// Structural tests of the physical plant: lanes, cables, logical
// links, and the PLP #1/#2 operations with their invariants.
#include "phy/plant.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace rsf::phy {
namespace {

using rsf::sim::SimTime;
using namespace rsf::sim::literals;

LanePowerParams test_power() { return LanePowerParams{1.0, 1.0, 0.1}; }

/// Plant with a 4-node chain 0-1-2-3, each cable 4 lanes of 25G, 2 m.
struct ChainFixture {
  PhysicalPlant plant;
  CableId c01, c12, c23;

  ChainFixture() {
    c01 = plant.add_cable(0, 1, 2.0, Medium::kFiber, 4, DataRate::gbps(25), test_power());
    c12 = plant.add_cable(1, 2, 2.0, Medium::kFiber, 4, DataRate::gbps(25), test_power());
    c23 = plant.add_cable(2, 3, 2.0, Medium::kFiber, 4, DataRate::gbps(25), test_power());
  }
};

TEST(Lane, StateMachine) {
  Lane lane(DataRate::gbps(25), test_power(), 1e-12);
  EXPECT_EQ(lane.state(), LaneState::kOff);
  EXPECT_FALSE(lane.is_up());
  lane.begin_training();
  EXPECT_EQ(lane.state(), LaneState::kTraining);
  lane.complete_training();
  EXPECT_TRUE(lane.is_up());
  lane.power_off();
  EXPECT_EQ(lane.state(), LaneState::kOff);
}

TEST(Lane, CompleteTrainingRequiresTraining) {
  Lane lane(DataRate::gbps(25), test_power(), 1e-12);
  EXPECT_THROW(lane.complete_training(), std::logic_error);
}

TEST(Lane, PowerFollowsState) {
  Lane lane(DataRate::gbps(25), test_power(), 1e-12);
  EXPECT_DOUBLE_EQ(lane.power_watts(), 0.1);
  lane.begin_training();
  EXPECT_DOUBLE_EQ(lane.power_watts(), 1.0);
  lane.complete_training();
  EXPECT_DOUBLE_EQ(lane.power_watts(), 1.0);
}

TEST(Cable, ValidatesConstruction) {
  PhysicalPlant plant;
  EXPECT_THROW(plant.add_cable(0, 0, 2.0, Medium::kFiber, 4, DataRate::gbps(25)),
               std::invalid_argument);
  EXPECT_THROW(plant.add_cable(0, 1, 2.0, Medium::kFiber, 0, DataRate::gbps(25)),
               std::invalid_argument);
  EXPECT_THROW(plant.add_cable(0, 1, -1.0, Medium::kFiber, 4, DataRate::gbps(25)),
               std::invalid_argument);
}

TEST(Cable, EndpointQueries) {
  ChainFixture f;
  const Cable& c = f.plant.cable(f.c01);
  EXPECT_TRUE(c.connects(0));
  EXPECT_TRUE(c.connects(1));
  EXPECT_FALSE(c.connects(2));
  EXPECT_EQ(c.other_end(0), 1u);
  EXPECT_EQ(c.other_end(1), 0u);
  EXPECT_THROW(c.other_end(7), std::invalid_argument);
}

TEST(Cable, PropagationFromLengthAndMedium) {
  ChainFixture f;
  EXPECT_EQ(f.plant.cable(f.c01).propagation_delay(), 10_ns);  // 2 m fibre
}

TEST(Plant, FindCableEitherOrientation) {
  ChainFixture f;
  EXPECT_EQ(f.plant.find_cable(0, 1), f.c01);
  EXPECT_EQ(f.plant.find_cable(1, 0), f.c01);
  EXPECT_FALSE(f.plant.find_cable(0, 3).has_value());
}

TEST(Plant, CreateAdjacentLinkClaimsLanes) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1});
  EXPECT_TRUE(f.plant.has_link(id));
  EXPECT_EQ(f.plant.link(id).lane_count(), 2);
  EXPECT_EQ(f.plant.lane_owner(LaneRef{f.c01, 0}), id);
  EXPECT_EQ(f.plant.lane_owner(LaneRef{f.c01, 1}), id);
  EXPECT_FALSE(f.plant.lane_owner(LaneRef{f.c01, 2}).has_value());
  EXPECT_EQ(f.plant.free_lanes(f.c01), (std::vector<int>{2, 3}));
  EXPECT_TRUE(f.plant.validate().empty()) << f.plant.validate();
}

TEST(Plant, DoubleClaimRejected) {
  ChainFixture f;
  f.plant.create_adjacent_link(f.c01, {0, 1});
  EXPECT_THROW(f.plant.create_adjacent_link(f.c01, {1, 2}), std::invalid_argument);
}

TEST(Plant, RejectsBadSegments) {
  ChainFixture f;
  // Broken chain: c01 then c23 skips node 2's cable.
  EXPECT_THROW(
      f.plant.create_link(0, 3, {LinkSegment{f.c01, {0}}, LinkSegment{f.c23, {0}}}),
      std::invalid_argument);
  // Unequal lane counts across segments.
  EXPECT_THROW(
      f.plant.create_link(0, 2, {LinkSegment{f.c01, {0, 1}}, LinkSegment{f.c12, {0}}}),
      std::invalid_argument);
  // Duplicate lane in a segment.
  EXPECT_THROW(f.plant.create_link(0, 1, {LinkSegment{f.c01, {0, 0}}}),
               std::invalid_argument);
  // Lane out of range.
  EXPECT_THROW(f.plant.create_link(0, 1, {LinkSegment{f.c01, {9}}}), std::invalid_argument);
  // Wrong terminus.
  EXPECT_THROW(f.plant.create_link(0, 2, {LinkSegment{f.c01, {0}}}), std::invalid_argument);
  // Zero lanes / no segments.
  EXPECT_THROW(f.plant.create_link(0, 1, {LinkSegment{f.c01, {}}}), std::invalid_argument);
  EXPECT_THROW(f.plant.create_link(0, 1, {}), std::invalid_argument);
}

TEST(Plant, DestroyReleasesLanes) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1});
  f.plant.destroy_link(id);
  EXPECT_FALSE(f.plant.has_link(id));
  EXPECT_EQ(f.plant.free_lanes(f.c01).size(), 4u);
  EXPECT_THROW(f.plant.destroy_link(id), std::invalid_argument);
}

TEST(Plant, MultiSegmentLinkMetrics) {
  ChainFixture f;
  const LinkId id = f.plant.create_link(
      0, 3,
      {LinkSegment{f.c01, {0, 1}}, LinkSegment{f.c12, {0, 1}}, LinkSegment{f.c23, {0, 1}}},
      FecSpec::of(FecScheme::kNone));
  const LogicalLink& l = f.plant.link(id);
  EXPECT_EQ(l.bypass_joints(), 2);
  EXPECT_EQ(l.lane_count(), 2);
  EXPECT_DOUBLE_EQ(l.raw_rate().gbps_value(), 50.0);
  // 3 x 10ns cable flight + 2 x 25ns bypass joints.
  EXPECT_EQ(l.propagation_delay(), 30_ns + 50_ns);
  EXPECT_EQ(f.plant.total_bypass_joints(), 2);
}

TEST(Plant, LinkReadyOnlyWhenAllLanesUp) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1});
  EXPECT_FALSE(f.plant.link(id).ready());
  f.plant.lane_begin_training(id);
  EXPECT_FALSE(f.plant.link(id).ready());
  f.plant.lane_complete_training(id);
  EXPECT_TRUE(f.plant.link(id).ready());
  f.plant.lane_power_off(id);
  EXPECT_FALSE(f.plant.link(id).ready());
}

TEST(Plant, SplitPreservesLanesAndSegments) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1, 2, 3});
  f.plant.lane_begin_training(id);
  f.plant.lane_complete_training(id);
  const auto [a, b] = f.plant.split_link(id, 1);
  EXPECT_FALSE(f.plant.has_link(id));
  EXPECT_EQ(f.plant.link(a).lane_count(), 1);
  EXPECT_EQ(f.plant.link(b).lane_count(), 3);
  // Lane states survive the split.
  EXPECT_TRUE(f.plant.link(a).ready());
  EXPECT_TRUE(f.plant.link(b).ready());
  EXPECT_TRUE(f.plant.validate().empty()) << f.plant.validate();
}

TEST(Plant, SplitRejectsDegenerateK) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1});
  EXPECT_THROW(f.plant.split_link(id, 0), std::invalid_argument);
  EXPECT_THROW(f.plant.split_link(id, 2), std::invalid_argument);
  EXPECT_THROW(f.plant.split_link(id, -1), std::invalid_argument);
}

TEST(Plant, BundleRestoresOriginalWidth) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1, 2, 3});
  const auto [a, b] = f.plant.split_link(id, 2);
  const LinkId merged = f.plant.bundle_links(a, b);
  EXPECT_EQ(f.plant.link(merged).lane_count(), 4);
  EXPECT_TRUE(f.plant.validate().empty());
}

TEST(Plant, BundleRequiresMatchingEndpoints) {
  ChainFixture f;
  const LinkId l01 = f.plant.create_adjacent_link(f.c01, {0});
  const LinkId l12 = f.plant.create_adjacent_link(f.c12, {0});
  EXPECT_THROW(f.plant.bundle_links(l01, l12), std::invalid_argument);
  EXPECT_THROW(f.plant.bundle_links(l01, l01), std::invalid_argument);
}

TEST(Plant, BypassJoinConcatenates) {
  ChainFixture f;
  const LinkId l01 = f.plant.create_adjacent_link(f.c01, {0});
  const LinkId l12 = f.plant.create_adjacent_link(f.c12, {0});
  const LinkId joined = f.plant.bypass_join(l01, l12);
  const LogicalLink& l = f.plant.link(joined);
  EXPECT_TRUE(l.connects(0));
  EXPECT_TRUE(l.connects(2));
  EXPECT_EQ(l.bypass_joints(), 1);
  EXPECT_TRUE(f.plant.validate().empty());
}

TEST(Plant, BypassJoinRequiresSharedEndpointAndEqualLanes) {
  ChainFixture f;
  const LinkId l01 = f.plant.create_adjacent_link(f.c01, {0});
  const LinkId l23 = f.plant.create_adjacent_link(f.c23, {0});
  EXPECT_THROW(f.plant.bypass_join(l01, l23), std::invalid_argument);
  const LinkId l12 = f.plant.create_adjacent_link(f.c12, {0, 1});
  EXPECT_THROW(f.plant.bypass_join(l01, l12), std::invalid_argument);
}

TEST(Plant, BypassJoinRejectsLoop) {
  ChainFixture f;
  const LinkId a = f.plant.create_adjacent_link(f.c01, {0});
  const LinkId b = f.plant.create_adjacent_link(f.c01, {1});
  // Joining two parallel 0-1 links would make a 0-0 loop.
  EXPECT_THROW(f.plant.bypass_join(a, b), std::invalid_argument);
}

TEST(Plant, BypassSeverRestoresPieces) {
  ChainFixture f;
  const LinkId l01 = f.plant.create_adjacent_link(f.c01, {0});
  const LinkId l12 = f.plant.create_adjacent_link(f.c12, {0});
  const LinkId l23 = f.plant.create_adjacent_link(f.c23, {0});
  const LinkId j1 = f.plant.bypass_join(l01, l12);
  const LinkId j2 = f.plant.bypass_join(j1, l23);
  EXPECT_EQ(f.plant.link(j2).bypass_joints(), 2);

  const auto [left, right] = f.plant.bypass_sever(j2, 2);
  EXPECT_TRUE(f.plant.link(left).connects(0));
  EXPECT_TRUE(f.plant.link(left).connects(2));
  EXPECT_EQ(f.plant.link(left).bypass_joints(), 1);
  EXPECT_TRUE(f.plant.link(right).connects(2));
  EXPECT_TRUE(f.plant.link(right).connects(3));
  EXPECT_EQ(f.plant.link(right).bypass_joints(), 0);
  EXPECT_TRUE(f.plant.validate().empty());
}

TEST(Plant, BypassSeverRejectsNonJoint) {
  ChainFixture f;
  const LinkId l01 = f.plant.create_adjacent_link(f.c01, {0});
  EXPECT_THROW(f.plant.bypass_sever(l01, 0), std::invalid_argument);
  const LinkId l12 = f.plant.create_adjacent_link(f.c12, {0});
  const LinkId j = f.plant.bypass_join(l01, l12);
  EXPECT_THROW(f.plant.bypass_sever(j, 0), std::invalid_argument);   // endpoint
  EXPECT_THROW(f.plant.bypass_sever(j, 3), std::invalid_argument);   // not on path
}

TEST(Plant, SetFecChangesLinkModel) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1});
  EXPECT_EQ(f.plant.link(id).fec().scheme, FecScheme::kNone);
  f.plant.set_fec(id, FecSpec::of(FecScheme::kRsKp4));
  EXPECT_EQ(f.plant.link(id).fec().scheme, FecScheme::kRsKp4);
  const double raw = f.plant.link(id).raw_rate().gbps_value();
  EXPECT_LT(f.plant.link(id).effective_rate().gbps_value(), raw);
}

TEST(Plant, AccountBitsSpreadsAcrossLanes) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1});
  f.plant.account_bits(id, 1000);
  EXPECT_EQ(f.plant.cable(f.c01).lane(0).stats().bits_carried, 500u);
  EXPECT_EQ(f.plant.cable(f.c01).lane(1).stats().bits_carried, 500u);
  EXPECT_EQ(f.plant.cable(f.c01).lane(2).stats().bits_carried, 0u);
}

TEST(Plant, SetCableBerPropagatesToLinkModel) {
  ChainFixture f;
  const LinkId id = f.plant.create_adjacent_link(f.c01, {0, 1},
                                                 FecSpec::of(FecScheme::kRsKr4));
  f.plant.set_cable_ber(f.c01, 1e-5);
  EXPECT_DOUBLE_EQ(f.plant.link(id).worst_pre_fec_ber(), 1e-5);
  EXPECT_GT(f.plant.link(id).frame_loss_prob(DataSize::bytes(1500)), 0.0);
}

TEST(Plant, PowerAccountsStatesAndBypass) {
  ChainFixture f;
  // All 12 lanes off: 12 x 0.1 W.
  EXPECT_NEAR(f.plant.total_power_watts(), 1.2, 1e-9);
  const LinkId l01 = f.plant.create_adjacent_link(f.c01, {0});
  const LinkId l12 = f.plant.create_adjacent_link(f.c12, {0});
  f.plant.lane_begin_training(l01);
  f.plant.lane_complete_training(l01);
  f.plant.lane_begin_training(l12);
  f.plant.lane_complete_training(l12);
  // Two lanes up now: 10 x 0.1 + 2 x 1.0.
  EXPECT_NEAR(f.plant.total_power_watts(), 3.0, 1e-9);
  const LinkId j = f.plant.bypass_join(l01, l12);
  // One bypass joint adds 0.3 W (default config).
  EXPECT_NEAR(f.plant.total_power_watts(), 3.3, 1e-9);
  EXPECT_NEAR(f.plant.link(j).power_watts(), 2.3, 1e-9);
}

TEST(Plant, LinkOneWayLatencyComposition) {
  ChainFixture f;
  const LinkId id =
      f.plant.create_adjacent_link(f.c01, {0, 1}, FecSpec::of(FecScheme::kRsKr4));
  const LogicalLink& l = f.plant.link(id);
  const auto frame = DataSize::bytes(1500);
  const SimTime expected =
      l.serialization_delay(frame) + l.propagation_delay() + l.fec().latency;
  EXPECT_EQ(l.one_way_latency(frame), expected);
  EXPECT_GT(l.serialization_delay(frame), SimTime::zero());
}

// --- PLP #5: BER estimation from FEC decoder telemetry ---

TEST(BerEstimator, ReturnsZeroWithoutTrafficOrFec) {
  ChainFixture f;
  const LinkId coded =
      f.plant.create_adjacent_link(f.c01, {0, 1}, FecSpec::of(FecScheme::kRsKr4));
  EXPECT_EQ(f.plant.estimated_pre_fec_ber(coded), 0.0);  // no traffic yet
  const LinkId uncoded = f.plant.create_adjacent_link(f.c12, {0, 1});
  rsf::sim::RandomStream rng(1);
  f.plant.account_frame(uncoded, DataSize::kilobytes(64), rng);
  EXPECT_EQ(f.plant.estimated_pre_fec_ber(uncoded), 0.0);  // no decoder => no telemetry
}

struct BerEstimatorCase {
  double true_ber;
  FecScheme scheme;
};

class BerEstimatorConvergence : public ::testing::TestWithParam<BerEstimatorCase> {};

TEST_P(BerEstimatorConvergence, TracksTrueBerWithinFactorTwo) {
  const auto& c = GetParam();
  PhysicalPlant plant;
  const CableId cable =
      plant.add_cable(0, 1, 2.0, Medium::kFiber, 2, DataRate::gbps(25), test_power());
  const LinkId link = plant.create_adjacent_link(cable, {0, 1}, FecSpec::of(c.scheme));
  plant.set_cable_ber(cable, c.true_ber);
  rsf::sim::RandomStream rng(7, "est");
  // ~64 MB of observed traffic: plenty of codewords at these BERs.
  for (int i = 0; i < 4096; ++i) {
    plant.account_frame(link, DataSize::kilobytes(16), rng);
  }
  const double est = plant.estimated_pre_fec_ber(link);
  EXPECT_GT(est, c.true_ber / 2) << "scheme=" << to_string(c.scheme);
  EXPECT_LT(est, c.true_ber * 2) << "scheme=" << to_string(c.scheme);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BerEstimatorConvergence,
    ::testing::Values(BerEstimatorCase{1e-7, FecScheme::kRsKr4},
                      BerEstimatorCase{1e-6, FecScheme::kRsKr4},
                      BerEstimatorCase{1e-5, FecScheme::kRsKp4},
                      BerEstimatorCase{1e-4, FecScheme::kRsKp4}));

// --- Property test: random op sequences keep invariants ---

TEST(PlantProperty, RandomOpSequencePreservesInvariants) {
  rsf::sim::RandomStream rng(2024, "plant-fuzz");
  for (int trial = 0; trial < 20; ++trial) {
    PhysicalPlant plant;
    // A ring of 6 nodes, 4 lanes each cable.
    std::vector<CableId> cables;
    for (int i = 0; i < 6; ++i) {
      cables.push_back(plant.add_cable(static_cast<NodeId>(i),
                                       static_cast<NodeId>((i + 1) % 6), 2.0,
                                       Medium::kFiber, 4, DataRate::gbps(25), test_power()));
    }
    for (CableId c : cables) plant.create_adjacent_link(c, {0, 1, 2, 3});

    for (int op = 0; op < 60; ++op) {
      const auto ids = plant.link_ids();
      if (ids.empty()) break;
      const LinkId pick = ids[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))];
      const int action = static_cast<int>(rng.uniform_int(0, 3));
      try {
        switch (action) {
          case 0: {
            const int lanes = plant.link(pick).lane_count();
            if (lanes >= 2) plant.split_link(pick, 1 + static_cast<int>(rng.uniform_int(0, lanes - 2)));
            break;
          }
          case 1: {
            // Try to bundle with any sibling.
            for (LinkId other : plant.link_ids()) {
              if (other == pick || !plant.has_link(pick)) break;
              try {
                plant.bundle_links(pick, other);
                break;
              } catch (const std::invalid_argument&) {
              }
            }
            break;
          }
          case 2: {
            for (LinkId other : plant.link_ids()) {
              if (other == pick || !plant.has_link(pick)) break;
              try {
                plant.bypass_join(pick, other);
                break;
              } catch (const std::invalid_argument&) {
              }
            }
            break;
          }
          case 3: {
            const auto joints = [&] {
              std::vector<NodeId> out;
              const LogicalLink& l = plant.link(pick);
              NodeId cursor = l.end_a();
              for (std::size_t i = 0; i + 1 < l.segments().size(); ++i) {
                cursor = plant.cable(l.segments()[i].cable).other_end(cursor);
                out.push_back(cursor);
              }
              return out;
            }();
            if (!joints.empty()) {
              plant.bypass_sever(pick, joints[static_cast<std::size_t>(rng.uniform_int(
                                           0, static_cast<std::int64_t>(joints.size()) - 1))]);
            }
            break;
          }
          default:
            break;
        }
      } catch (const std::invalid_argument&) {
        // Rejected ops must leave the plant untouched; validate below.
      }
      ASSERT_TRUE(plant.validate().empty())
          << "trial " << trial << " op " << op << ": " << plant.validate();
    }
    // Total lane ownership never exceeds physical lanes.
    int owned = 0;
    for (CableId c : cables) {
      owned += 4 - static_cast<int>(plant.free_lanes(c).size());
    }
    EXPECT_LE(owned, 24);
  }
}

}  // namespace
}  // namespace rsf::phy
