#include <gtest/gtest.h>

#include "fabric/builders.hpp"
#include "workload/generator.hpp"
#include "workload/mapreduce.hpp"
#include "workload/traffic.hpp"

namespace rsf::workload {
namespace {

using phy::DataSize;
using phy::NodeId;
using rsf::sim::RandomStream;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

// --- TrafficMatrix ---

TEST(TrafficMatrix, UniformExcludesSelf) {
  const auto m = TrafficMatrix::uniform(4);
  for (std::uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(m.demand(s, s), 0.0);
    EXPECT_DOUBLE_EQ(m.row_sum(s), 3.0);
  }
}

TEST(TrafficMatrix, SetAddAndBounds) {
  TrafficMatrix m(3);
  m.set_demand(0, 1, 2.0);
  m.add_demand(0, 1, 0.5);
  EXPECT_DOUBLE_EQ(m.demand(0, 1), 2.5);
  EXPECT_THROW(m.set_demand(3, 0, 1.0), std::out_of_range);
  EXPECT_THROW(m.set_demand(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(TrafficMatrix(0), std::invalid_argument);
}

TEST(TrafficMatrix, NormalizeMakesTotalOne) {
  auto m = TrafficMatrix::uniform(5);
  m.normalize();
  EXPECT_NEAR(m.total(), 1.0, 1e-12);
}

TEST(TrafficMatrix, SampleDstRespectsWeights) {
  TrafficMatrix m(3);
  m.set_demand(0, 1, 9.0);
  m.set_demand(0, 2, 1.0);
  RandomStream rng(3);
  int to1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const NodeId d = m.sample_dst(0, rng);
    EXPECT_NE(d, 0u);
    if (d == 1) ++to1;
  }
  EXPECT_NEAR(static_cast<double>(to1) / n, 0.9, 0.02);
}

TEST(TrafficMatrix, SampleDstEmptyRowReturnsSelf) {
  TrafficMatrix m(3);
  RandomStream rng(3);
  EXPECT_EQ(m.sample_dst(1, rng), 1u);
}

TEST(TrafficMatrix, PermutationIsDerangementOneToOne) {
  RandomStream rng(11);
  const auto m = TrafficMatrix::permutation(16, rng);
  std::vector<int> in_degree(16, 0);
  for (std::uint32_t s = 0; s < 16; ++s) {
    int out = 0;
    for (std::uint32_t d = 0; d < 16; ++d) {
      if (m.demand(s, d) > 0) {
        EXPECT_NE(s, d);
        ++out;
        ++in_degree[d];
      }
    }
    EXPECT_EQ(out, 1);
  }
  for (int deg : in_degree) EXPECT_EQ(deg, 1);
}

TEST(TrafficMatrix, HotspotConcentratesDemand) {
  const auto m = TrafficMatrix::hotspot(8, 3, 0.7);
  double to_hot = 0;
  double total = 0;
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (std::uint32_t d = 0; d < 8; ++d) {
      total += m.demand(s, d);
      if (d == 3) to_hot += m.demand(s, d);
    }
  }
  EXPECT_GT(to_hot / total, 0.6);
  EXPECT_THROW(TrafficMatrix::hotspot(8, 3, 1.5), std::invalid_argument);
}

TEST(TrafficMatrix, IncastAllToSink) {
  const auto m = TrafficMatrix::incast(5, 2);
  for (std::uint32_t s = 0; s < 5; ++s) {
    for (std::uint32_t d = 0; d < 5; ++d) {
      if (s != 2 && d == 2) {
        EXPECT_GT(m.demand(s, d), 0.0);
      } else {
        EXPECT_EQ(m.demand(s, d), 0.0);
      }
    }
  }
}

TEST(TrafficMatrix, OppositePairsMaxDistance) {
  const auto m = TrafficMatrix::opposite(8);
  EXPECT_GT(m.demand(0, 4), 0.0);
  EXPECT_GT(m.demand(1, 5), 0.0);
  EXPECT_EQ(m.demand(0, 1), 0.0);
}

TEST(TrafficMatrix, ShufflePattern) {
  const auto m = TrafficMatrix::shuffle(6, {0, 1}, {4, 5});
  EXPECT_GT(m.demand(0, 4), 0.0);
  EXPECT_GT(m.demand(1, 5), 0.0);
  EXPECT_EQ(m.demand(4, 0), 0.0);
  EXPECT_EQ(m.demand(0, 1), 0.0);
}

// --- SizeDistribution ---

TEST(SizeDistribution, FixedAlwaysSame) {
  RandomStream rng(5);
  const auto d = SizeDistribution::fixed_size(DataSize::kilobytes(32));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), DataSize::kilobytes(32));
}

TEST(SizeDistribution, HeavyTailInBounds) {
  RandomStream rng(5);
  const auto d = SizeDistribution::heavy_tail(1.2, 1e3, 1e6);
  for (int i = 0; i < 1000; ++i) {
    const auto s = d.sample(rng);
    EXPECT_GE(s.byte_count(), 1e3 - 1);
    EXPECT_LE(s.byte_count(), 1e6 + 1);
  }
}

// --- FlowGenerator ---

struct GenFixture : ::testing::Test {
  Simulator sim;
  fabric::Rack rack;

  GenFixture() {
    fabric::RackParams p;
    p.width = 4;
    p.height = 4;
    rack = fabric::build_grid(&sim, p);
  }
};

TEST_F(GenFixture, GeneratesAndCompletesFlows) {
  GeneratorConfig cfg;
  cfg.mean_interarrival = 50_us;
  cfg.horizon = 1_ms;
  cfg.sizes = SizeDistribution::fixed_size(DataSize::kilobytes(16));
  FlowGenerator gen(&sim, rack.network.get(), TrafficMatrix::uniform(16), cfg);
  gen.start();
  sim.run_until();
  EXPECT_GT(gen.flows_generated(), 100u);
  EXPECT_EQ(gen.results().size(), gen.flows_generated());
  for (const auto& r : gen.results()) EXPECT_FALSE(r.failed);
  EXPECT_GT(gen.goodput_gbps(), 0.0);
  EXPECT_GT(gen.completion_histogram().count(), 0u);
}

TEST_F(GenFixture, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim2;
    fabric::RackParams p;
    p.width = 4;
    p.height = 4;
    fabric::Rack r = fabric::build_grid(&sim2, p);
    GeneratorConfig cfg;
    cfg.seed = seed;
    cfg.mean_interarrival = 50_us;
    cfg.horizon = 500_us;
    FlowGenerator gen(&sim2, r.network.get(), TrafficMatrix::uniform(16), cfg);
    gen.start();
    sim2.run_until();
    return gen.flows_generated();
  };
  EXPECT_EQ(run_once(42), run_once(42));
  EXPECT_NE(run_once(42), run_once(43));
}

TEST_F(GenFixture, HorizonStopsGeneration) {
  GeneratorConfig cfg;
  cfg.mean_interarrival = 10_us;
  cfg.horizon = 100_us;
  FlowGenerator gen(&sim, rack.network.get(), TrafficMatrix::uniform(16), cfg);
  gen.start();
  sim.run_until();
  for (const auto& r : gen.results()) {
    EXPECT_LE(r.spec.start, 100_us);
  }
}

TEST_F(GenFixture, ValidatesConfig) {
  GeneratorConfig cfg;
  cfg.mean_interarrival = SimTime::zero();
  EXPECT_THROW(FlowGenerator(&sim, rack.network.get(), TrafficMatrix::uniform(16), cfg),
               std::invalid_argument);
  EXPECT_THROW(FlowGenerator(nullptr, rack.network.get(), TrafficMatrix::uniform(16),
                             GeneratorConfig{}),
               std::invalid_argument);
}

// --- ShuffleJob ---

TEST_F(GenFixture, ShuffleBarrierSemantics) {
  ShuffleConfig cfg;
  cfg.mappers = {0, 1, 2, 3};
  cfg.reducers = {12, 13, 14, 15};
  cfg.bytes_per_pair = DataSize::kilobytes(64);
  ShuffleJob job(&sim, rack.network.get(), cfg);
  std::optional<ShuffleResult> result;
  job.run([&](const ShuffleResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(result->flows, 16u);
  EXPECT_EQ(result->failed, 0u);
  EXPECT_GE(result->max_flow, result->median_flow);
  EXPECT_GE(result->straggler_ratio(), 1.0);
  // The job is gated by its slowest flow.
  EXPECT_GE(result->job_completion, result->max_flow);
}

TEST_F(GenFixture, ShuffleSkipsColocatedPairs) {
  ShuffleConfig cfg;
  cfg.mappers = {0, 1};
  cfg.reducers = {1, 2};
  cfg.bytes_per_pair = DataSize::kilobytes(4);
  ShuffleJob job(&sim, rack.network.get(), cfg);
  std::optional<ShuffleResult> result;
  job.run([&](const ShuffleResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->flows, 3u);  // (0->1, 0->2, 1->2); 1->1 skipped
}

TEST_F(GenFixture, ShuffleRejectsDoubleRunAndEmptySets) {
  ShuffleConfig cfg;
  cfg.mappers = {0};
  cfg.reducers = {1};
  ShuffleJob job(&sim, rack.network.get(), cfg);
  job.run(nullptr);
  EXPECT_THROW(job.run(nullptr), std::logic_error);
  ShuffleConfig empty;
  EXPECT_THROW(ShuffleJob(&sim, rack.network.get(), empty), std::invalid_argument);
}

}  // namespace
}  // namespace rsf::workload
