#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rsf::sim {
namespace {

using namespace rsf::sim::literals;

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.ps(), 0);
  EXPECT_EQ(t, SimTime::zero());
}

TEST(SimTime, FactoryConversions) {
  EXPECT_EQ(SimTime::picoseconds(1500).ps(), 1500);
  EXPECT_EQ(SimTime::nanoseconds(1.5).ps(), 1500);
  EXPECT_EQ(SimTime::microseconds(2).ps(), 2'000'000);
  EXPECT_EQ(SimTime::milliseconds(1).ps(), 1'000'000'000);
  EXPECT_EQ(SimTime::seconds(1).ps(), 1'000'000'000'000);
}

TEST(SimTime, AccessorsRoundTrip) {
  const SimTime t = SimTime::microseconds(3.25);
  EXPECT_DOUBLE_EQ(t.us(), 3.25);
  EXPECT_DOUBLE_EQ(t.ns(), 3250.0);
  EXPECT_DOUBLE_EQ(t.ms(), 0.00325);
  EXPECT_DOUBLE_EQ(t.sec(), 3.25e-6);
}

TEST(SimTime, Literals) {
  EXPECT_EQ((5_ns).ps(), 5000);
  EXPECT_EQ((2_us).ps(), 2'000'000);
  EXPECT_EQ((1_ms).ps(), 1'000'000'000);
  EXPECT_EQ((1_s).ps(), 1'000'000'000'000);
  EXPECT_EQ((7_ps).ps(), 7);
}

TEST(SimTime, ComparisonOperators) {
  EXPECT_LT(1_ns, 1_us);
  EXPECT_GT(1_ms, 999_us);
  EXPECT_LE(5_ns, 5_ns);
  EXPECT_NE(1_ns, 2_ns);
}

TEST(SimTime, Arithmetic) {
  EXPECT_EQ(1_us + 500_ns, SimTime::nanoseconds(1500));
  EXPECT_EQ(1_us - 400_ns, 600_ns);
  EXPECT_EQ(3_ns * std::int64_t{4}, 12_ns);
  EXPECT_EQ(std::int64_t{4} * 3_ns, 12_ns);
  EXPECT_EQ(12_ns / std::int64_t{4}, 3_ns);
  EXPECT_EQ(12_ns / 3_ns, 4);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = 10_ns;
  t += 5_ns;
  EXPECT_EQ(t, 15_ns);
  t -= 10_ns;
  EXPECT_EQ(t, 5_ns);
}

TEST(SimTime, ScalarDoubleMultiply) {
  EXPECT_EQ(10_ns * 2.5, 25_ns);
  EXPECT_EQ(10_ns * 0.5, 5_ns);
}

TEST(SimTime, RatioOfDurations) {
  EXPECT_DOUBLE_EQ((500_ns).ratio(1_us), 0.5);
  EXPECT_DOUBLE_EQ((3_us).ratio(1_us), 3.0);
}

TEST(SimTime, InfinityIsLargerThanEverything) {
  EXPECT_GT(SimTime::infinity(), SimTime::seconds(1e6));
  EXPECT_GT(SimTime::infinity(), 1_s);
}

TEST(SimTime, NegativeDurationsBehave) {
  const SimTime t = 1_ns - 3_ns;
  EXPECT_EQ(t.ps(), -2000);
  EXPECT_LT(t, SimTime::zero());
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_EQ((1500_ps).to_string(), "1.500ns");
  EXPECT_EQ((2_us).to_string(), "2.000us");
  EXPECT_EQ((0_ps).to_string(), "0.000ps");
  EXPECT_EQ((3_ms).to_string(), "3.000ms");
  EXPECT_EQ((2_s).to_string(), "2.000s");
}

TEST(SimTime, StreamOperator) {
  std::ostringstream oss;
  oss << 250_ns;
  EXPECT_EQ(oss.str(), "250.000ns");
}

}  // namespace
}  // namespace rsf::sim
