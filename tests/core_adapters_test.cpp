// Tests of the CRC's actuation policies: adaptive FEC and the power
// manager.
#include <gtest/gtest.h>

#include "core/fec_adapter.hpp"
#include "core/power_manager.hpp"
#include "core/ring.hpp"
#include "fabric/builders.hpp"

namespace rsf::core {
namespace {

using phy::FecScheme;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct AdapterFixture : ::testing::Test {
  Simulator sim;
  fabric::Rack rack;

  AdapterFixture() {
    fabric::RackParams p;
    p.width = 4;
    p.height = 2;
    rack = fabric::build_grid(&sim, p);
  }

  RackSnapshot take_snapshot() {
    ControlRing ring(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                     rack.network.get());
    RackSnapshot out;
    ring.circulate(100_us, [&](const RackSnapshot& s) { out = s; });
    // Telemetry events are weak; run to an explicit horizon.
    sim.run_until(sim.now() + ring.circulation_time());
    return out;
  }
};

// --- FecAdapter::choose (pure policy) ---

TEST_F(AdapterFixture, ChoosePicksLightestAtCleanBer) {
  FecAdapter adapter(rack.engine.get(), rack.plant.get());
  EXPECT_EQ(adapter.choose(1e-15, FecScheme::kNone), FecScheme::kNone);
}

TEST_F(AdapterFixture, ChooseEscalatesUnderDegradation) {
  FecAdapter adapter(rack.engine.get(), rack.plant.get());
  // At 1e-5 only the RS codes meet a 1e-9 frame-loss target.
  const FecScheme pick = adapter.choose(1e-5, FecScheme::kNone);
  EXPECT_TRUE(pick == FecScheme::kRsKr4 || pick == FecScheme::kRsKp4);
  // At a catastrophic BER nothing meets target: max protection.
  EXPECT_EQ(adapter.choose(1e-2, FecScheme::kNone), FecScheme::kRsKp4);
}

TEST_F(AdapterFixture, ChooseEscalationMonotoneInBer) {
  FecAdapter adapter(rack.engine.get(), rack.plant.get());
  auto ladder_rank = [](FecScheme s) {
    switch (s) {
      case FecScheme::kNone:
        return 0;
      case FecScheme::kFireCode:
        return 1;
      case FecScheme::kRsKr4:
        return 2;
      case FecScheme::kRsKp4:
        return 3;
    }
    return 0;
  };
  int prev = 0;
  for (double ber : {1e-14, 1e-11, 1e-9, 1e-7, 1e-5, 1e-4, 1e-3}) {
    const int rank = ladder_rank(adapter.choose(ber, FecScheme::kNone));
    EXPECT_GE(rank, prev) << "ber=" << ber;
    prev = rank;
  }
}

TEST_F(AdapterFixture, ChooseHysteresisBlocksMarginalRelax) {
  FecAdapterConfig cfg;
  cfg.target_frame_loss = 1e-9;
  cfg.relax_margin = 1e-2;
  FecAdapter adapter(rack.engine.get(), rack.plant.get(), cfg);
  // Find a BER where kRsKr4 barely meets target: relaxing from kRsKp4
  // must be refused there, but allowed at a clearly better BER.
  const double marginal_ber = [&] {
    for (double ber = 1e-3; ber > 1e-12; ber /= 1.2) {
      const auto spec = phy::FecSpec::of(FecScheme::kRsKr4);
      const double loss = spec.frame_loss_prob(ber, cfg.ref_frame);
      if (loss <= cfg.target_frame_loss && loss > cfg.target_frame_loss * cfg.relax_margin) {
        return ber;
      }
    }
    return 0.0;
  }();
  ASSERT_GT(marginal_ber, 0.0);
  EXPECT_EQ(adapter.choose(marginal_ber, FecScheme::kRsKp4), FecScheme::kRsKp4);
  EXPECT_NE(adapter.choose(1e-13, FecScheme::kRsKp4), FecScheme::kRsKp4);
}

TEST_F(AdapterFixture, ApplySubmitsOnlyWhereNeeded) {
  // Degrade one cable; apply should change (at least) that link and
  // leave clean links on their mode.
  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  rack.plant->set_cable_ber(cable, 1e-4);

  FecAdapter adapter(rack.engine.get(), rack.plant.get());
  const RackSnapshot snap = take_snapshot();
  const int changes = adapter.apply(snap);
  EXPECT_GE(changes, 1);
  sim.run_until();
  EXPECT_EQ(rack.plant->link(victim).fec().scheme, FecScheme::kRsKp4);
  // Re-applying the same snapshot state is idempotent.
  const RackSnapshot snap2 = take_snapshot();
  EXPECT_EQ(adapter.apply(snap2), 0);
}

// --- PowerManager ---

TEST_F(AdapterFixture, ShedsLanesWhenOverCap) {
  PowerManagerConfig cfg;
  cfg.cap_watts = rack.total_power_watts() - 1.0;  // just over budget
  cfg.max_ops_per_epoch = 1;
  PowerManager pm(rack.engine.get(), rack.plant.get(), cfg);
  const double before = rack.plant->total_power_watts();
  const RackSnapshot snap = take_snapshot();
  EXPECT_EQ(pm.apply(snap), 1);
  sim.run_until();
  EXPECT_EQ(pm.sheds(), 1u);
  EXPECT_EQ(pm.shed_lane_count(), 1u);
  EXPECT_LT(rack.plant->total_power_watts(), before);
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(AdapterFixture, NoShedWhenUnderCap) {
  PowerManagerConfig cfg;
  cfg.cap_watts = 1e9;
  PowerManager pm(rack.engine.get(), rack.plant.get(), cfg);
  EXPECT_EQ(pm.apply(take_snapshot()), 0);
  EXPECT_EQ(pm.sheds(), 0u);
}

TEST_F(AdapterFixture, ShedStopsAtMinLanes) {
  PowerManagerConfig cfg;
  cfg.cap_watts = 0.0;  // impossible budget: shed everything possible
  cfg.max_ops_per_epoch = 100;
  PowerManager pm(rack.engine.get(), rack.plant.get(), cfg);
  // Run several epochs; eventually all links are at min_lanes.
  for (int epoch = 0; epoch < 12; ++epoch) {
    pm.apply(take_snapshot());
    sim.run_until();
  }
  for (LinkId id : rack.plant->link_ids()) {
    if (rack.plant->link(id).ready()) {
      EXPECT_GE(rack.plant->link(id).lane_count(), cfg.min_lanes);
    }
  }
  // Nothing shreddable remains: apply is a no-op.
  const auto sheds_before = pm.sheds();
  pm.apply(take_snapshot());
  sim.run_until();
  EXPECT_EQ(pm.sheds(), sheds_before);
}

TEST_F(AdapterFixture, RestoreRebundlesUnderPressure) {
  PowerManagerConfig cfg;
  cfg.cap_watts = rack.total_power_watts() - 1.0;
  cfg.max_ops_per_epoch = 1;
  cfg.restore_margin_watts = 1.0;
  PowerManager pm(rack.engine.get(), rack.plant.get(), cfg);
  pm.apply(take_snapshot());
  sim.run_until();
  ASSERT_EQ(pm.shed_lane_count(), 1u);

  // Synthesise the restore condition: far under cap AND demand
  // pressure (hot links) in the same snapshot.
  RackSnapshot pressure = take_snapshot();
  for (auto& o : pressure.links) o.utilization = 0.9;
  pressure.rack_power_watts = 0.0;
  const int ops = pm.apply(pressure);
  EXPECT_GE(ops, 1);
  sim.run_until();
  EXPECT_EQ(pm.restores(), 1u);
  EXPECT_EQ(pm.shed_lane_count(), 0u);
  // The re-bundled link is back at 2 lanes.
  int two_lane = 0;
  for (LinkId id : rack.plant->link_ids()) {
    if (rack.plant->link(id).lane_count() == 2) ++two_lane;
  }
  EXPECT_EQ(two_lane, static_cast<int>(rack.plant->link_count()));
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(AdapterFixture, NoRestoreWithoutPressure) {
  PowerManagerConfig cfg;
  cfg.cap_watts = rack.total_power_watts() - 1.0;
  PowerManager pm(rack.engine.get(), rack.plant.get(), cfg);
  pm.apply(take_snapshot());
  sim.run_until();
  ASSERT_GE(pm.shed_lane_count(), 1u);
  RackSnapshot idle = take_snapshot();
  for (auto& o : idle.links) o.utilization = 0.0;
  idle.rack_power_watts = 0.0;
  pm.apply(idle);
  sim.run_until();
  EXPECT_EQ(pm.restores(), 0u);
}

}  // namespace
}  // namespace rsf::core
