// Regression guard for the allocation-free inline event path: once the
// kernel's pools are warm, scheduling and draining inline-record events
// must not touch the global heap at all. A refactor that reintroduces a
// per-event allocation (std::function capture, node-based queue, record
// copy-out) fails here immediately rather than as a silent perf cliff.
//
// The counters instrument the global operator new/delete for this test
// binary only. gtest itself allocates freely between the probe windows;
// the assertion covers only the bracketed drain.

#include <cstddef>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

std::size_t g_allocations = 0;
std::size_t g_deallocations = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void operator delete(void* p) noexcept {
  ++g_deallocations;
  std::free(p);
}

void operator delete(void* p, std::size_t) noexcept {
  ++g_deallocations;
  std::free(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  ++g_deallocations;
  std::free(p);
}

namespace rsf::sim {
namespace {

// The workload under guard: a self-rescheduling trivially-copyable
// functor (the shape of every per-packet continuation) plus a same-time
// burst wide enough to exercise batch extraction and sorting.
struct SelfReschedule {
  Simulator* sim;
  int* remaining;

  void operator()() {
    if (--*remaining > 0) {
      sim->schedule_at(sim->now() + SimTime::nanoseconds(5), *this);
    }
  }
};
static_assert(is_inline_event_v<SelfReschedule>);

struct CountTick {
  int* counter;
  void operator()() { ++*counter; }
};
static_assert(is_inline_event_v<CountTick>);

void run_workload(Simulator& sim, int chain_events, int burst_width) {
  int remaining = chain_events;
  sim.schedule_at(sim.now() + SimTime::nanoseconds(1),
                  SelfReschedule{&sim, &remaining});
  int burst_fired = 0;
  const SimTime burst_at = sim.now() + SimTime::nanoseconds(2);
  for (int i = 0; i < burst_width; ++i) {
    sim.schedule_at(burst_at, CountTick{&burst_fired});
  }
  sim.run_until(SimTime::infinity());
  ASSERT_EQ(remaining, 0);
  ASSERT_EQ(burst_fired, burst_width);
}

TEST(SimAllocGuardTest, DrainingInlineEventsIsAllocationFree) {
  Simulator sim;
  // Warm-up: an identical workload pre-sizes every internal vector —
  // the liveness slot pool, the calendar slab and free list, the batch
  // buffer. Steady state begins here.
  run_workload(sim, 10'000, 64);

  const std::size_t allocs_before = g_allocations;
  const std::size_t deallocs_before = g_deallocations;
  run_workload(sim, 10'000, 64);
  const std::size_t allocs = g_allocations - allocs_before;
  const std::size_t deallocs = g_deallocations - deallocs_before;

  EXPECT_EQ(allocs, 0u) << "inline event drain touched the heap";
  EXPECT_EQ(deallocs, 0u) << "inline event drain freed to the heap";
  EXPECT_EQ(sim.executed(), 2u * (10'000 + 64));
}

TEST(SimAllocGuardTest, CancelOfInlineEventIsAllocationFree) {
  Simulator sim;
  int fired = 0;
  // Warm-up including a cancel so the tombstone path is also sized.
  const EventId warm = sim.schedule_at(sim.now() + SimTime::nanoseconds(1),
                                       CountTick{&fired});
  ASSERT_TRUE(sim.cancel(warm));
  run_workload(sim, 1'000, 8);

  const std::size_t allocs_before = g_allocations;
  const std::size_t deallocs_before = g_deallocations;
  const EventId id = sim.schedule_at(sim.now() + SimTime::nanoseconds(1),
                                     CountTick{&fired});
  ASSERT_TRUE(sim.cancel(id));
  run_workload(sim, 1'000, 8);
  EXPECT_EQ(g_allocations - allocs_before, 0u);
  EXPECT_EQ(g_deallocations - deallocs_before, 0u);
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace rsf::sim
