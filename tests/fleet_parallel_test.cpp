// Conservative-PDES fleet drive (FleetConfig::workers > 1). The
// contract under test: the N-worker merge replays the 1-worker
// oracle's (time, insertion-seq) schedule byte for byte — same
// metrics tables, same results, for every seed and scenario — while
// genuinely executing shard windows on worker threads (the TSan CI
// leg runs this binary to prove the handoff is clean). Plus the
// engine's refusal paths: zero spine lookahead and bad worker counts
// fail fast with clear errors, never a deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/spsc_ring.hpp"
#include "runtime/fleet.hpp"
#include "runtime/fleet_parallel.hpp"
#include "runtime/runtime.hpp"
#include "sim/simulator.hpp"
#include "workload/crossrack.hpp"

namespace rsf {
namespace {

using phy::DataSize;
using rsf::sim::ParallelMergePeer;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using runtime::FleetConfig;
using runtime::FleetRuntime;
using runtime::ParallelFleetEngine;
using runtime::RackShape;
using runtime::RackSpec;
using runtime::RuntimeConfig;
using runtime::SpineSpec;
using namespace rsf::sim::literals;

// --- core::SpscRing -------------------------------------------------

TEST(SpscRing, FifoOrderAndFullRefusal) {
  core::SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full: refused, not overwritten
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  core::SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRing, CrossThreadHandoffPreservesOrder) {
  core::SpscRing<int> ring(256);
  constexpr int kItems = 100000;
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      if (ring.push(i)) ++i;
    }
  });
  int expected = 0;
  while (expected < kItems) {
    int out;
    if (ring.pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- refusal paths --------------------------------------------------

FleetConfig two_rack_fleet(SimTime spine_latency) {
  RuntimeConfig rack;
  rack.shape = RackShape::kGrid;
  rack.rack.width = 3;
  rack.rack.height = 3;
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack, 0});
  fc.racks.push_back(RackSpec{rack, 0});
  SpineSpec s;
  s.rack_a = 0;
  s.rack_b = 1;
  s.latency = spine_latency;
  fc.spine.push_back(s);
  return fc;
}

TEST(ParallelFleet, RejectsNonPositiveWorkerCount) {
  FleetConfig fc = two_rack_fleet(2_us);
  fc.workers = 0;
  EXPECT_THROW(FleetRuntime{fc}, std::invalid_argument);
}

TEST(ParallelFleet, ZeroLookaheadIsRefusedNotDeadlocked) {
  // A zero-latency spine link means same-instant cross-rack coupling:
  // no conservative horizon exists. The constructor must say so
  // clearly — the failure mode being prevented is a lookahead
  // deadlock (or a silent serialization) deep into a run.
  FleetConfig fc = two_rack_fleet(SimTime::zero());
  fc.workers = 2;
  try {
    FleetRuntime fleet(fc);
    FAIL() << "workers > 1 with zero spine lookahead must be refused";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("lookahead"), std::string::npos);
  }
  // The same fabric is fine on the serial oracle.
  fc.workers = 1;
  EXPECT_NO_THROW(FleetRuntime{fc});
}

TEST(ParallelFleet, SpinelessFleetHasInfiniteLookahead) {
  // No spine links: racks can never interact, the conservative bound
  // is vacuous, and workers > 1 is legal.
  RuntimeConfig rack;
  rack.shape = RackShape::kGrid;
  rack.rack.width = 3;
  rack.rack.height = 3;
  FleetConfig fc;
  fc.racks.push_back(RackSpec{rack, 0});
  fc.racks.push_back(RackSpec{rack, 0});
  fc.workers = 2;
  EXPECT_NO_THROW(FleetRuntime{fc});
}

// --- engine order semantics ----------------------------------------

/// Two shard rings + a fleet ring with a shared sequence counter —
/// the exact setup FleetRuntime builds — driven directly so the test
/// can pin the merged execution order event by event.
struct EngineHarness {
  Simulator fleet;
  Simulator s0;
  Simulator s1;
  std::vector<std::string> order;
  EngineHarness() {
    ParallelMergePeer::share_sequence(s0, fleet);
    ParallelMergePeer::share_sequence(s1, fleet);
  }
  auto tag(const char* name) {
    return [this, name] { order.push_back(name); };
  }
};

TEST(ParallelFleet, WindowEdgeEventOrdersBySharedSequence) {
  // Shard 0's window is bounded by shard 1's pending event at 30 us.
  // During the window, shard 0 schedules a NEW event at exactly that
  // horizon. The oracle rule: same instant resolves by insertion
  // sequence, so shard 1's (earlier-scheduled) event runs first even
  // though shard 0 was mid-window when the tie appeared.
  EngineHarness h;
  h.s1.schedule_at(30_us, h.tag("s1@30"));
  h.s0.schedule_at(10_us, [&h] {
    h.order.push_back("s0@10");
    h.s0.schedule_at(30_us, h.tag("s0@30"));
  });
  ParallelFleetEngine engine(&h.fleet, {&h.s0, &h.s1}, 2);
  engine.run_until(SimTime::infinity());
  EXPECT_EQ(h.order,
            (std::vector<std::string>{"s0@10", "s1@30", "s0@30"}));
  EXPECT_EQ(h.s0.now(), 30_us);
  EXPECT_EQ(h.s1.now(), 30_us);
}

TEST(ParallelFleet, FleetRingWinsSameInstantWhenScheduledFirst) {
  // Three rings tie at 20 us; insertion order (fleet, s1, s0) must be
  // the execution order — not ring index, not worker layout.
  EngineHarness h;
  h.fleet.schedule_at(20_us, h.tag("fleet@20"));
  h.s1.schedule_at(20_us, h.tag("s1@20"));
  h.s0.schedule_at(20_us, h.tag("s0@20"));
  ParallelFleetEngine engine(&h.fleet, {&h.s0, &h.s1}, 2);
  engine.run_until(SimTime::infinity());
  EXPECT_EQ(h.order,
            (std::vector<std::string>{"fleet@20", "s1@20", "s0@20"}));
}

TEST(ParallelFleet, EmissionRunsImmediatelyAfterEmittingEvent) {
  // A continuation emitted from a shard event must run right after
  // that event — before any other pending event anywhere — exactly
  // where the oracle's inline callback sat. Shard 1 holds a pending
  // event at the same instant to tempt the merge to run it first.
  EngineHarness h;
  ParallelFleetEngine* eng = nullptr;
  h.s1.schedule_at(10_us, h.tag("s1@10"));
  h.s0.schedule_at(5_us, [&] {
    h.order.push_back("s0@5");
    eng->emit(0, [&h] { h.order.push_back("continuation"); });
    h.s0.schedule_at(10_us, h.tag("s0@10"));
  });
  ParallelFleetEngine engine(&h.fleet, {&h.s0, &h.s1}, 2);
  eng = &engine;
  engine.run_until(SimTime::infinity());
  EXPECT_EQ(h.order, (std::vector<std::string>{"s0@5", "continuation",
                                               "s1@10", "s0@10"}));
  EXPECT_EQ(engine.cross_shard_events(), 1u);
}

TEST(ParallelFleet, WindowsRunOnWorkerThreads) {
  // Shard 1 (owner: helper thread 1 of 2 workers) holds a strictly
  // earliest burst; its window must execute off the merge thread —
  // the cross-thread handoff is real, not a fallback to serial.
  EngineHarness h;
  const std::thread::id main_id = std::this_thread::get_id();
  std::vector<std::thread::id> burst_threads;
  for (int i = 0; i < 3; ++i) {
    h.s1.schedule_at(10_us + SimTime::microseconds(i), [&burst_threads] {
      burst_threads.push_back(std::this_thread::get_id());
    });
  }
  h.s0.schedule_at(50_us, h.tag("s0@50"));
  ParallelFleetEngine engine(&h.fleet, {&h.s0, &h.s1}, 2);
  engine.run_until(SimTime::infinity());
  ASSERT_EQ(burst_threads.size(), 3u);
  for (const std::thread::id id : burst_threads) EXPECT_NE(id, main_id);
  EXPECT_GE(engine.sync_windows(), 1u);
}

TEST(ParallelFleet, BoundedRunParksEveryClockAtHorizon) {
  EngineHarness h;
  h.s0.schedule_at(10_us, h.tag("s0@10"));
  ParallelFleetEngine engine(&h.fleet, {&h.s0, &h.s1}, 2);
  engine.run_until(100_us);
  // The oracle's bounded run_until leaves now() == until once the
  // strong events are drained; every ring must agree.
  EXPECT_EQ(h.fleet.now(), 100_us);
  EXPECT_EQ(h.s0.now(), 100_us);
  EXPECT_EQ(h.s1.now(), 100_us);
}

// --- N-vs-1 byte equality ------------------------------------------

struct FleetRunOutput {
  std::string table;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t sync_windows = 0;
  std::uint64_t cross_shard_events = 0;
};

/// A lossy three-rack fleet under a shuffle + incast, rendered to its
/// full merged metrics table — the same artifact the CI determinism
/// gate diffs on the quickstart and ext9 binaries.
FleetRunOutput run_mixed_fleet(int workers) {
  RuntimeConfig small;
  small.shape = RackShape::kGrid;
  small.rack.width = 3;
  small.rack.height = 3;
  FleetConfig fc;
  for (int i = 0; i < 3; ++i) fc.racks.push_back(RackSpec{small, 0});
  for (int i = 0; i < 2; ++i) {
    SpineSpec s;
    s.rack_a = static_cast<std::uint32_t>(i);
    s.rack_b = static_cast<std::uint32_t>(i + 1);
    s.latency = 2_us;
    s.loss_prob = 0.01;  // exercises the spine RNG draw order
    fc.spine.push_back(s);
  }
  fc.seed = 7;
  fc.workers = workers;
  FleetRuntime fleet(fc);

  workload::CrossRackShuffleConfig shuffle;
  for (int x = 0; x < 3; ++x) shuffle.mappers.push_back(fleet.at(0, x, 2));
  for (phy::NodeId n = 1; n <= 3; ++n) shuffle.reducers.push_back({2, n});
  shuffle.bytes_per_pair = DataSize::kilobytes(32);
  fleet.add_shuffle(shuffle).run([](const workload::CrossRackResult&) {});

  workload::CrossRackIncastConfig incast;
  for (int x = 0; x < 3; ++x) incast.sources.push_back(fleet.at(1, x, 0));
  incast.sink = fleet.at(0, 1, 1);
  incast.bytes_per_source = DataSize::kilobytes(16);
  incast.start = 40_us;
  fleet.add_incast(incast).run([](const workload::CrossRackResult&) {});

  fleet.start();
  fleet.run_until();
  fleet.stop();
  fleet.run_until();

  FleetRunOutput out;
  out.table = fleet.metrics_table().to_string();
  out.completed = fleet.flows_completed();
  out.failed = fleet.flows_failed();
  out.sync_windows = fleet.sync_windows();
  out.cross_shard_events = fleet.cross_shard_events();
  return out;
}

TEST(ParallelFleet, MixedWorkloadMetricsTableByteIdenticalAcrossWorkers) {
  const FleetRunOutput oracle = run_mixed_fleet(1);
  ASSERT_GT(oracle.completed, 0u);
  EXPECT_EQ(oracle.sync_windows, 0u);  // serial drive: engine absent
  for (const int workers : {2, 4}) {
    const FleetRunOutput par = run_mixed_fleet(workers);
    EXPECT_EQ(par.table, oracle.table) << "workers=" << workers;
    EXPECT_EQ(par.completed, oracle.completed);
    EXPECT_EQ(par.failed, oracle.failed);
    // The equivalence must be earned: the parallel run really opened
    // conservative windows and exchanged mailbox continuations.
    EXPECT_GT(par.sync_windows, 0u) << "workers=" << workers;
    EXPECT_GT(par.cross_shard_events, 0u) << "workers=" << workers;
  }
}

TEST(ParallelFleet, SkewedScenariosByteIdenticalAcrossWorkers) {
  // The ext9 sweep's three scenarios — different topologies, rack
  // mixes, and controller policies — each checked lossless and lossy.
  using workload::SkewedFleetScenario;
  using workload::SkewedScenarioConfig;
  using workload::SkewedScenarioKind;
  using workload::SkewedScenarioResult;
  const SkewedScenarioKind kinds[] = {SkewedScenarioKind::kHotRackIncast,
                                      SkewedScenarioKind::kSlowSpineLeg,
                                      SkewedScenarioKind::kMixedRackSizes};
  for (const SkewedScenarioKind kind : kinds) {
    for (const double loss : {0.0, 0.005}) {
      auto run = [&](int workers) {
        SkewedScenarioConfig cfg;
        cfg.kind = kind;
        cfg.loss_prob = loss;
        cfg.reservations = true;
        cfg.workers = workers;
        SkewedFleetScenario scenario(cfg);
        const SkewedScenarioResult r = scenario.run();
        return std::pair<SkewedScenarioResult, std::string>(
            r, scenario.fleet().metrics_table().to_string());
      };
      const auto oracle = run(1);
      const auto par = run(4);
      EXPECT_EQ(par.second, oracle.second)
          << "kind=" << static_cast<int>(kind) << " loss=" << loss;
      EXPECT_EQ(par.first.hot.job_completion, oracle.first.hot.job_completion);
      EXPECT_EQ(par.first.background.job_completion,
                oracle.first.background.job_completion);
      EXPECT_EQ(par.first.hot.retransmits, oracle.first.hot.retransmits);
      EXPECT_EQ(par.first.promotions, oracle.first.promotions);
      EXPECT_EQ(par.first.reserved_bytes, oracle.first.reserved_bytes);
    }
  }
}

}  // namespace
}  // namespace rsf
