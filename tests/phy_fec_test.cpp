#include "phy/fec.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rsf::phy {
namespace {

using rsf::sim::SimTime;

TEST(FecSpec, NoneHasNoOverheadOrLatency) {
  const FecSpec spec = FecSpec::of(FecScheme::kNone);
  EXPECT_DOUBLE_EQ(spec.overhead, 0.0);
  EXPECT_EQ(spec.latency, SimTime::zero());
  EXPECT_EQ(spec.n, 0);
}

TEST(FecSpec, OverheadOrderingMatchesProtectionOrdering) {
  const double none = FecSpec::of(FecScheme::kNone).overhead;
  const double fire = FecSpec::of(FecScheme::kFireCode).overhead;
  const double kr4 = FecSpec::of(FecScheme::kRsKr4).overhead;
  const double kp4 = FecSpec::of(FecScheme::kRsKp4).overhead;
  EXPECT_LT(none, fire);
  EXPECT_LT(fire, kr4);
  EXPECT_LT(kr4, kp4);
}

TEST(FecSpec, LatencyOrdering) {
  EXPECT_LT(FecSpec::of(FecScheme::kFireCode).latency, FecSpec::of(FecScheme::kRsKr4).latency);
  EXPECT_LT(FecSpec::of(FecScheme::kRsKr4).latency, FecSpec::of(FecScheme::kRsKp4).latency);
}

TEST(FecSpec, EffectiveRateAppliesOverhead) {
  const FecSpec kp4 = FecSpec::of(FecScheme::kRsKp4);
  const DataRate raw = DataRate::gbps(100);
  EXPECT_NEAR(kp4.effective_rate(raw).gbps_value(), 100.0 * (1 - kp4.overhead), 1e-9);
  EXPECT_DOUBLE_EQ(FecSpec::of(FecScheme::kNone).effective_rate(raw).gbps_value(), 100.0);
}

TEST(FecSpec, UncodedCodewordErrorIsBer) {
  const FecSpec none = FecSpec::of(FecScheme::kNone);
  EXPECT_DOUBLE_EQ(none.codeword_error_prob(1e-6), 1e-6);
}

TEST(FecSpec, CodewordErrorZeroAtZeroBer) {
  for (FecScheme s : kAllFecSchemes) {
    EXPECT_EQ(FecSpec::of(s).codeword_error_prob(0.0), 0.0) << to_string(s);
  }
}

TEST(FecSpec, CodewordErrorMonotonicInBer) {
  const FecSpec kr4 = FecSpec::of(FecScheme::kRsKr4);
  double prev = 0.0;
  for (double ber : {1e-9, 1e-7, 1e-5, 1e-4, 1e-3}) {
    const double p = kr4.codeword_error_prob(ber);
    EXPECT_GE(p, prev) << "ber=" << ber;
    prev = p;
  }
}

TEST(FecSpec, StrongerCodeHasLowerCodewordError) {
  // At a moderately bad BER the heavier code must do better.
  for (double ber : {1e-5, 1e-4, 3e-4}) {
    const double kr4 = FecSpec::of(FecScheme::kRsKr4).codeword_error_prob(ber);
    const double kp4 = FecSpec::of(FecScheme::kRsKp4).codeword_error_prob(ber);
    EXPECT_LT(kp4, kr4) << "ber=" << ber;
  }
}

TEST(FecSpec, Kp4DeliversHugeCodingGain) {
  // RS(544,514) takes a 1e-5 channel to effectively error-free.
  const FecSpec kp4 = FecSpec::of(FecScheme::kRsKp4);
  EXPECT_LT(kp4.frame_loss_prob(1e-5, DataSize::bytes(1500)), 1e-12);
  // ...but cannot rescue a 1e-2 channel.
  EXPECT_GT(kp4.frame_loss_prob(1e-2, DataSize::bytes(1500)), 0.1);
}

TEST(FecSpec, FrameLossZeroForEmptyFrame) {
  EXPECT_EQ(FecSpec::of(FecScheme::kRsKr4).frame_loss_prob(1e-3, DataSize::zero()), 0.0);
}

TEST(FecSpec, UncodedFrameLossMatchesClosedForm) {
  const FecSpec none = FecSpec::of(FecScheme::kNone);
  const double ber = 1e-8;
  const auto frame = DataSize::bytes(1500);
  const double expected = 1.0 - std::pow(1.0 - ber, static_cast<double>(frame.bit_count()));
  EXPECT_NEAR(none.frame_loss_prob(ber, frame), expected, expected * 1e-6);
}

TEST(FecSpec, FrameLossIncreasesWithFrameSize) {
  const FecSpec kr4 = FecSpec::of(FecScheme::kRsKr4);
  const double small = kr4.frame_loss_prob(2e-4, DataSize::bytes(64));
  const double large = kr4.frame_loss_prob(2e-4, DataSize::bytes(9000));
  EXPECT_LT(small, large);
}

TEST(FecSpec, FrameLossIsProbability) {
  for (FecScheme s : kAllFecSchemes) {
    for (double ber : {0.0, 1e-12, 1e-6, 1e-3, 0.5, 1.0}) {
      const double p = FecSpec::of(s).frame_loss_prob(ber, DataSize::bytes(1500));
      EXPECT_GE(p, 0.0) << to_string(s) << " ber=" << ber;
      EXPECT_LE(p, 1.0) << to_string(s) << " ber=" << ber;
    }
  }
}

TEST(FecSpec, PostFecBerImprovesOnPreFec) {
  for (FecScheme s : {FecScheme::kFireCode, FecScheme::kRsKr4, FecScheme::kRsKp4}) {
    const double pre = 1e-6;
    EXPECT_LT(FecSpec::of(s).post_fec_ber(pre), pre) << to_string(s);
  }
}

TEST(FecSpec, PostFecBerUncodedIsIdentity) {
  EXPECT_DOUBLE_EQ(FecSpec::of(FecScheme::kNone).post_fec_ber(1e-7), 1e-7);
}

TEST(FecSpec, IeeeKp4ThresholdBehaviour) {
  // KP4 is specified to deliver ~1e-15 post-FEC at ~2.2e-4 pre-FEC.
  // Our analytic model should put the 1e-13 boundary in that decade.
  const FecSpec kp4 = FecSpec::of(FecScheme::kRsKp4);
  EXPECT_LT(kp4.post_fec_ber(1e-4), 1e-12);
  EXPECT_GT(kp4.post_fec_ber(3e-3), 1e-9);
}

struct FecCase {
  FecScheme scheme;
  double ber;
};

class FecPropertyTest : public ::testing::TestWithParam<FecCase> {};

TEST_P(FecPropertyTest, CodewordErrorIsProbability) {
  const auto& c = GetParam();
  const double p = FecSpec::of(c.scheme).codeword_error_prob(c.ber);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST_P(FecPropertyTest, PostFecImprovesInWorkingRegime) {
  // Below a code's breaking point FEC must improve the BER. Above it,
  // error propagation from failed codewords can amplify errors (real
  // decoders mis-correct too), so the guarantee only applies while the
  // codeword error probability is small.
  const auto& c = GetParam();
  const FecSpec spec = FecSpec::of(c.scheme);
  const double post = spec.post_fec_ber(c.ber);
  EXPECT_GE(post, 0.0);
  EXPECT_LE(post, 1.0);
  if (spec.codeword_error_prob(c.ber) < 1e-2) {
    EXPECT_LE(post, c.ber + 1e-15);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FecPropertyTest,
    ::testing::Values(FecCase{FecScheme::kNone, 1e-12}, FecCase{FecScheme::kNone, 1e-3},
                      FecCase{FecScheme::kFireCode, 1e-9}, FecCase{FecScheme::kFireCode, 1e-4},
                      FecCase{FecScheme::kRsKr4, 1e-10}, FecCase{FecScheme::kRsKr4, 1e-5},
                      FecCase{FecScheme::kRsKr4, 1e-3}, FecCase{FecScheme::kRsKp4, 1e-8},
                      FecCase{FecScheme::kRsKp4, 1e-4}, FecCase{FecScheme::kRsKp4, 1e-2}));

TEST(FecScheme, Names) {
  EXPECT_EQ(to_string(FecScheme::kNone), "none");
  EXPECT_EQ(to_string(FecScheme::kFireCode), "fire-code");
  EXPECT_EQ(to_string(FecScheme::kRsKr4), "rs-kr4");
  EXPECT_EQ(to_string(FecScheme::kRsKp4), "rs-kp4");
}

}  // namespace
}  // namespace rsf::phy
