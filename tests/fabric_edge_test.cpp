// Edge-case and robustness tests of the transport and routing layers:
// TTL backstops, reservations, store-and-forward arithmetic, and the
// estimated-BER control path end to end.
#include <gtest/gtest.h>

#include <optional>

#include "core/controller.hpp"
#include "fabric/builders.hpp"
#include "phy/ber_profile.hpp"
#include "workload/generator.hpp"

namespace rsf {
namespace {

using fabric::Rack;
using fabric::RackParams;
using phy::DataSize;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

TEST(FabricEdge, FailedLaneImmediatelyVisibleToRouting) {
  Simulator sim;
  RackParams p;
  p.width = 3;
  p.height = 1;
  Rack rack = fabric::build_grid(&sim, p);
  const std::uint64_t v0 = rack.topology->version();
  const LinkId l01 = *rack.topology->link_between(0, 1);
  rack.plant->fail_lane(phy::LaneRef{rack.plant->link(l01).segments().front().cable, 0});
  // The plant change observer bumps the version; routing re-runs
  // Dijkstra and the dead link is excluded.
  EXPECT_GT(rack.topology->version(), v0);
  EXPECT_FALSE(rack.topology->usable(l01));
  EXPECT_FALSE(rack.router->next_hop(0, 2).has_value());  // chain is cut
}

TEST(FabricEdge, TtlBackstopTriggersRetransmitNotOrbit) {
  Simulator sim;
  RackParams p;
  p.width = 4;
  p.height = 4;
  p.net_config.max_hops = 4;  // tighter than the 6-hop diameter
  Rack rack = fabric::build_grid(&sim, p);
  std::optional<bool> delivered;
  rack.network->send_probe(rack.node_at(0, 0), rack.node_at(3, 3), DataSize::bytes(256),
                           [&](SimTime, int, bool ok) { delivered = ok; });
  sim.run_until();
  // The probe keeps being returned to the source until retries
  // exhaust: it is dropped, never delivered, and the simulation
  // terminates (no infinite orbit).
  ASSERT_TRUE(delivered.has_value());
  EXPECT_FALSE(*delivered);
  EXPECT_GT(rack.network->counters().get("net.drops.retries_exhausted") +
                rack.network->counters().get("net.drops.no_route"),
            0u);
}

TEST(FabricEdge, MaxHopsDefaultAdmitsDiameterPaths) {
  Simulator sim;
  RackParams p;
  p.width = 8;
  p.height = 8;
  Rack rack = fabric::build_grid(&sim, p);
  std::optional<bool> delivered;
  rack.network->send_probe(rack.node_at(0, 0), rack.node_at(7, 7), DataSize::bytes(256),
                           [&](SimTime, int hops, bool ok) {
                             delivered = ok;
                             EXPECT_EQ(hops, 14);
                           });
  sim.run_until();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_TRUE(*delivered);
}

TEST(FabricEdge, ReservationClearedOnStructuralChange) {
  Simulator sim;
  RackParams p;
  p.width = 3;
  p.height = 1;
  Rack rack = fabric::build_grid(&sim, p);
  const LinkId l01 = *rack.topology->link_between(0, 1);
  rack.plant->set_reservation(l01, 99);
  EXPECT_EQ(rack.plant->link(l01).reserved_for(), std::optional<std::uint64_t>(99));
  // Splitting destroys the link; successors start unreserved.
  const auto [a, b] = rack.plant->split_link(l01, 1);
  EXPECT_FALSE(rack.plant->link(a).reserved_for().has_value());
  EXPECT_FALSE(rack.plant->link(b).reserved_for().has_value());
}

TEST(FabricEdge, ProbeOverReservedOnlyPathIsDropped) {
  // If the only path is a reserved circuit, anonymous traffic cannot
  // cross: reservations really are private.
  Simulator sim;
  RackParams p;
  p.width = 2;
  p.height = 1;
  Rack rack = fabric::build_grid(&sim, p);
  const LinkId only = *rack.topology->link_between(0, 1);
  rack.plant->set_reservation(only, 7);
  std::optional<bool> delivered;
  rack.network->send_probe(0, 1, DataSize::bytes(64),
                           [&](SimTime, int, bool ok) { delivered = ok; });
  sim.run_until();
  ASSERT_TRUE(delivered.has_value());
  EXPECT_FALSE(*delivered);
}

TEST(FabricEdge, StoreAndForwardLatencyArithmetic) {
  // SF per-hop cost = full serialization + prop + switch pipeline; the
  // closed form must match the measured probe exactly.
  Simulator sim;
  RackParams p;
  p.net_config.switch_params.cut_through = false;
  Rack rack = fabric::build_chain(&sim, 4, p);
  const DataSize size = DataSize::bytes(1024);
  const auto& l = rack.plant->link(*rack.topology->link_between(0, 1));
  const auto& sp = rack.network->config().switch_params;
  const SimTime per_link =
      l.serialization_delay(size) + l.propagation_delay() + l.fec().latency;
  const SimTime expected = sp.nic_latency + per_link * std::int64_t{3} +
                           sp.switch_latency * std::int64_t{2} + sp.nic_latency;
  std::optional<SimTime> measured;
  rack.network->send_probe(0, 3, size, [&](SimTime lat, int, bool) { measured = lat; });
  sim.run_until();
  ASSERT_TRUE(measured.has_value());
  EXPECT_EQ(*measured, expected);
}

TEST(FabricEdge, EstimatedBerDrivesAdaptiveFecEndToEnd) {
  // Full loop on *estimated* (telemetry-derived) BER: ramp a cable,
  // keep traffic flowing so the estimator has codewords to count, and
  // check the CRC still escalates FEC — without ever reading the
  // oracle BER.
  Simulator sim;
  RackParams p;
  p.width = 3;
  p.height = 1;
  p.fec = phy::FecScheme::kRsKr4;  // estimator needs a decoder running
  Rack rack = fabric::build_grid(&sim, p);

  core::CrcConfig cfg;
  cfg.epoch = 200_us;
  cfg.enable_adaptive_fec = true;
  cfg.ring.use_estimated_ber = true;
  // Estimator-driven control must keep a decoder running (see
  // FecAdapterConfig::floor_scheme) or it goes blind.
  cfg.fec.floor_scheme = phy::FecScheme::kRsKr4;
  core::CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                          rack.router.get(), rack.network.get(), cfg);
  crc.start();

  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  phy::BerDriver ber(&sim, rack.plant.get(), cable,
                     phy::ramp_ber(1e-12, 2e-4, 1_ms, 6_ms), 100_us);
  ber.start();

  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 50_us;
  gen_cfg.horizon = 10_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(64));
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::uniform(3), gen_cfg);
  gen.start();
  sim.run_until(15_ms);
  ber.stop();
  crc.stop();
  sim.run_until();

  const auto link_now = rack.topology->link_between(0, 1);
  ASSERT_TRUE(link_now.has_value());
  EXPECT_EQ(rack.plant->link(*link_now).fec().scheme, phy::FecScheme::kRsKp4);
  // And the estimate itself is in the right decade.
  const double est = rack.plant->estimated_pre_fec_ber(*link_now);
  EXPECT_GT(est, 2e-5);
  EXPECT_LT(est, 2e-3);
}

TEST(FabricEdge, RepeatedSplitBundleCyclesAreStable) {
  Simulator sim;
  RackParams p;
  p.width = 2;
  p.height = 1;
  p.lanes_per_cable = 4;
  p.lanes_per_link = 4;
  Rack rack = fabric::build_grid(&sim, p);
  LinkId current = rack.plant->link_ids().front();
  for (int i = 0; i < 10; ++i) {
    std::optional<plp::PlpResult> split;
    rack.engine->submit(plp::SplitCommand{current, 2},
                        [&](const plp::PlpResult& r) { split = r; });
    sim.run_until();
    ASSERT_TRUE(split && split->ok) << "iteration " << i;
    std::optional<plp::PlpResult> bundle;
    rack.engine->submit(plp::BundleCommand{split->created[0], split->created[1]},
                        [&](const plp::PlpResult& r) { bundle = r; });
    sim.run_until();
    ASSERT_TRUE(bundle && bundle->ok) << "iteration " << i;
    current = bundle->created.front();
    ASSERT_TRUE(rack.plant->validate().empty());
  }
  EXPECT_EQ(rack.plant->link(current).lane_count(), 4);
  EXPECT_TRUE(rack.plant->link(current).ready());
}

}  // namespace
}  // namespace rsf
