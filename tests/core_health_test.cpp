// Lane failures and the CRC health manager: dark-lane re-provisioning.
#include "core/health_manager.hpp"

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/ring.hpp"
#include "fabric/builders.hpp"
#include "workload/generator.hpp"

namespace rsf::core {
namespace {

using phy::LaneRef;
using phy::LinkId;
using rsf::sim::SimTime;
using rsf::sim::Simulator;
using namespace rsf::sim::literals;

struct HealthFixture : ::testing::Test {
  Simulator sim;
  fabric::Rack rack;

  HealthFixture() {
    fabric::RackParams p;
    p.width = 4;
    p.height = 2;
    p.lanes_per_cable = 4;  // 2 dark spares per cable
    p.lanes_per_link = 2;
    rack = fabric::build_grid(&sim, p);
  }

  RackSnapshot take_snapshot() {
    ControlRing ring(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                     rack.network.get());
    RackSnapshot out;
    ring.circulate(100_us, [&](const RackSnapshot& s) { out = s; });
    sim.run_until(sim.now() + ring.circulation_time());
    return out;
  }
};

TEST_F(HealthFixture, LaneFailureSemantics) {
  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  EXPECT_TRUE(rack.plant->link(victim).ready());

  rack.plant->fail_lane(LaneRef{cable, 0});
  EXPECT_FALSE(rack.plant->link(victim).ready());
  EXPECT_TRUE(rack.plant->cable(cable).lane(0).is_failed());
  EXPECT_FALSE(rack.plant->cable(cable).lane(0).is_up());
  EXPECT_EQ(rack.plant->failed_lanes(cable), std::vector<int>{0});
  EXPECT_EQ(rack.plant->failed_lanes_of_link(victim).size(), 1u);

  // Training cannot revive a failed lane.
  rack.plant->lane_begin_training(victim);
  rack.plant->lane_complete_training(victim);
  EXPECT_FALSE(rack.plant->link(victim).ready());

  // Repair + retrain does.
  rack.plant->repair_lane(LaneRef{cable, 0});
  rack.plant->lane_begin_training(victim);
  rack.plant->lane_complete_training(victim);
  EXPECT_TRUE(rack.plant->link(victim).ready());
}

TEST_F(HealthFixture, ProvisionCommandCreatesAndTrains) {
  const phy::CableId cable = 0;
  const auto free = rack.plant->free_lanes(cable);
  ASSERT_GE(free.size(), 2u);
  std::optional<plp::PlpResult> result;
  rack.engine->submit(plp::ProvisionCommand{cable, {free[0], free[1]},
                                            phy::FecScheme::kRsKr4},
                      [&](const plp::PlpResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result && result->ok);
  ASSERT_EQ(result->created.size(), 1u);
  const LinkId id = result->created.front();
  EXPECT_TRUE(rack.plant->link(id).ready());
  EXPECT_EQ(rack.plant->link(id).fec().scheme, phy::FecScheme::kRsKr4);
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(HealthFixture, ProvisionRejectsFailedAndClaimedLanes) {
  const phy::CableId cable = 0;
  rack.plant->fail_lane(LaneRef{cable, 2});
  std::optional<plp::PlpResult> result;
  rack.engine->submit(plp::ProvisionCommand{cable, {2, 3}, phy::FecScheme::kNone},
                      [&](const plp::PlpResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  // Lane 0 already belongs to the initial link.
  result.reset();
  rack.engine->submit(plp::ProvisionCommand{cable, {0}, phy::FecScheme::kNone},
                      [&](const plp::PlpResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST_F(HealthFixture, DecommissionFreesLanes) {
  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  std::optional<plp::PlpResult> result;
  rack.engine->submit(plp::DecommissionCommand{victim},
                      [&](const plp::PlpResult& r) { result = r; });
  sim.run_until();
  ASSERT_TRUE(result && result->ok);
  EXPECT_FALSE(rack.plant->has_link(victim));
  EXPECT_EQ(rack.plant->free_lanes(cable).size(), 4u);
  // Freed lanes are powered off.
  EXPECT_EQ(rack.plant->cable(cable).lane(0).state(), phy::LaneState::kOff);
}

TEST_F(HealthFixture, ManagerReplacesFailedLaneFromDarkPool) {
  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  rack.plant->fail_lane(LaneRef{cable, 0});

  HealthManager hm(rack.engine.get(), rack.plant.get());
  EXPECT_EQ(hm.apply(take_snapshot()), 1);
  sim.run_until();
  EXPECT_EQ(hm.remediations_completed(), 1u);

  // A replacement link exists between 0 and 1, full width, using the
  // dark lanes instead of the dead one.
  const auto replacement = rack.topology->link_between(0, 1);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_TRUE(rack.plant->link(*replacement).ready());
  EXPECT_EQ(rack.plant->link(*replacement).lane_count(), 2);
  EXPECT_TRUE(rack.plant->failed_lanes_of_link(*replacement).empty());
  EXPECT_TRUE(rack.plant->validate().empty());
}

TEST_F(HealthFixture, ManagerDegradesWidthWhenSparesExhausted) {
  const LinkId victim = *rack.topology->link_between(0, 1);
  const phy::CableId cable = rack.plant->link(victim).segments().front().cable;
  // Kill one member lane AND both spares: only 1 healthy lane remains.
  rack.plant->fail_lane(LaneRef{cable, 0});
  rack.plant->fail_lane(LaneRef{cable, 2});
  rack.plant->fail_lane(LaneRef{cable, 3});

  HealthManager hm(rack.engine.get(), rack.plant.get());
  EXPECT_EQ(hm.apply(take_snapshot()), 1);
  sim.run_until();
  const auto replacement = rack.topology->link_between(0, 1);
  ASSERT_TRUE(replacement.has_value());
  EXPECT_EQ(rack.plant->link(*replacement).lane_count(), 1);  // degraded, alive
  EXPECT_TRUE(rack.plant->link(*replacement).ready());
}

TEST_F(HealthFixture, ManagerIgnoresMerelyDarkLinks) {
  // A link that is down because it was shut off (no failed lanes) is
  // the power manager's business, not the health manager's.
  const LinkId victim = *rack.topology->link_between(0, 1);
  rack.engine->submit(plp::ShutdownCommand{victim});
  sim.run_until();
  HealthManager hm(rack.engine.get(), rack.plant.get());
  EXPECT_EQ(hm.apply(take_snapshot()), 0);
}

TEST_F(HealthFixture, ManagerRespectsOpsBudget) {
  HealthManagerConfig cfg;
  cfg.max_ops_per_epoch = 1;
  // Fail lanes on two different links.
  const LinkId a = *rack.topology->link_between(0, 1);
  const LinkId b = *rack.topology->link_between(1, 2);
  rack.plant->fail_lane(LaneRef{a != b ? rack.plant->link(a).segments().front().cable
                                       : 0,
                                0});
  rack.plant->fail_lane(LaneRef{rack.plant->link(b).segments().front().cable, 0});
  HealthManager hm(rack.engine.get(), rack.plant.get(), cfg);
  EXPECT_EQ(hm.apply(take_snapshot()), 1);
  sim.run_until();
  EXPECT_EQ(hm.apply(take_snapshot()), 1);
  sim.run_until();
  EXPECT_EQ(hm.remediations_completed(), 2u);
}

TEST_F(HealthFixture, EndToEndRecoveryUnderTraffic) {
  core::CrcConfig cfg;
  cfg.epoch = 100_us;
  cfg.enable_health_manager = true;
  CrcController crc(&sim, rack.plant.get(), rack.engine.get(), rack.topology.get(),
                    rack.router.get(), rack.network.get(), cfg);
  crc.start();

  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 100_us;
  gen_cfg.horizon = 5_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(phy::DataSize::kilobytes(32));
  workload::FlowGenerator gen(&sim, rack.network.get(),
                              workload::TrafficMatrix::uniform(8), gen_cfg);
  gen.start();

  // Kill a member lane of a live link mid-run.
  sim.schedule_at(1_ms, [&] {
    const auto victim = rack.topology->link_between(0, 1);
    if (victim) {
      rack.plant->fail_lane(
          phy::LaneRef{rack.plant->link(*victim).segments().front().cable, 0});
    }
  });
  sim.run_until(10_ms);
  crc.stop();
  sim.run_until();

  // The rack healed: a full-width ready link between 0 and 1, all
  // flows completed despite the failure.
  EXPECT_GT(crc.health_manager().remediations_completed(), 0u);
  const auto healed = rack.topology->link_between(0, 1);
  ASSERT_TRUE(healed.has_value());
  EXPECT_EQ(rack.plant->link(*healed).lane_count(), 2);
  EXPECT_EQ(rack.network->flows_failed(), 0u);
  EXPECT_EQ(gen.results().size(), gen.flows_generated());
  EXPECT_TRUE(rack.plant->validate().empty());
}

}  // namespace
}  // namespace rsf::core
