#!/usr/bin/env bash
# Docs hygiene gate (run by the CI docs job, and locally any time):
#
#   1. every relative markdown link in README.md and docs/*.md
#      resolves to an existing file;
#   2. every registry metric name mentioned in src/ is documented in
#      docs/METRICS.md — new counters must land with their docs.
#
# Part 2 is rsf-lint rule D5 (tools/lint/): the lint pass owns the
# quoted dotted-name convention ("net.retransmits", ...), the link<N>
# normalization and the substring match, so this script delegates to
# it — an existing build-tree binary when one is around, else a
# throwaway compile of the dependency-free token frontend.
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

# --- 1. internal links ---
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  while IFS= read -r link; do
    target="${link%%#*}"
    [ -z "$target" ] && continue
    # Strictly relative to the containing file — that is how GitHub
    # renders it; a root-relative fallback would hide broken links.
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $doc -> $link"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//' |
           grep -vE '^(https?:|mailto:|#)' || true)
done

# --- 2. metric coverage (rsf-lint rule D5) ---
lint_bin=""
for candidate in build/tools/lint/rsf-lint build*/tools/lint/rsf-lint; do
  if [ -x "$candidate" ]; then
    lint_bin="$candidate"
    break
  fi
done
if [ -z "$lint_bin" ]; then
  lint_bin=$(mktemp -t rsf-lint.XXXXXX)
  trap 'rm -f "$lint_bin"' EXIT
  c++ -std=c++20 -O1 -o "$lint_bin" \
      tools/lint/lexer.cpp tools/lint/rules.cpp tools/lint/main.cpp
fi
if ! "$lint_bin" --rule D5 --metrics-doc docs/METRICS.md --src-root src; then
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
