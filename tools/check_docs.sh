#!/usr/bin/env bash
# Docs hygiene gate (run by the CI docs job, and locally any time):
#
#   1. every relative markdown link in README.md and docs/*.md
#      resolves to an existing file;
#   2. every registry metric name mentioned in src/ is documented in
#      docs/METRICS.md — new counters must land with their docs.
#
# Metric extraction is the quoted dotted-name convention every
# component follows ("net.retransmits", "spine.reserved_bytes", ...).
# Dynamic names are covered by substring matching: a prefix builder
# like "net.drops." passes when METRICS.md documents any expansion of
# it, and per-link names normalize link<digits> to the documented
# link<N> pattern.
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

# --- 1. internal links ---
for doc in README.md docs/*.md; do
  dir=$(dirname "$doc")
  while IFS= read -r link; do
    target="${link%%#*}"
    [ -z "$target" ] && continue
    # Strictly relative to the containing file — that is how GitHub
    # renders it; a root-relative fallback would hide broken links.
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN LINK: $doc -> $link"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$doc" | sed 's/^](//; s/)$//' |
           grep -vE '^(https?:|mailto:|#)' || true)
done

# --- 2. metric coverage ---
while IFS= read -r name; do
  norm=$(echo "$name" | sed -E 's/link[0-9]+/link<N>/')
  if ! grep -qF "$norm" docs/METRICS.md; then
    echo "UNDOCUMENTED METRIC: \"$name\" appears in src/ but not in docs/METRICS.md"
    fail=1
  fi
done < <(grep -rhoE '"(net|crc|spine|fleet|plp|chaos)\.[a-zA-Z0-9_.-]*"' src/ \
           --include='*.cpp' --include='*.hpp' | tr -d '"' | sort -u)

if [ "$fail" -ne 0 ]; then
  echo "docs check FAILED"
  exit 1
fi
echo "docs check OK"
