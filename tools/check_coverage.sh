#!/usr/bin/env bash
# Line-coverage gate (run by the CI coverage job, and locally any
# time):
#
#   1. configure a dedicated build with RSF_COVERAGE=ON (gcov
#      instrumentation at -O0) and run the whole ctest suite;
#   2. aggregate gcov's per-TU JSON into per-component line coverage
#      for src/ (a header's line counts as covered if ANY including TU
#      covers it);
#   3. compare against the floors committed in
#      tools/coverage_baseline.txt and fail on any regression.
#
# The floors are a ratchet, not a target: they sit a few points under
# the measured coverage so unrelated churn doesn't flake the gate, and
# they move up when a PR meaningfully lifts a component. The full
# report lands in <build>/coverage-report.txt for the CI artifact.
#
# Plain gcov + python3 only — no lcov/gcovr dependency.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-coverage}"
BASELINE="tools/coverage_baseline.txt"

cmake -B "$BUILD_DIR" -S . -DRSF_COVERAGE=ON \
  -DRSF_BUILD_BENCHES=OFF -DRSF_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" >/dev/null
(cd "$BUILD_DIR" && ctest -j"$(nproc)" --timeout 600 --output-on-failure >/dev/null)

# One single-line JSON document per object file, all appended to one
# report; -t keeps gcov off the filesystem.
report="$BUILD_DIR/coverage-gcov.jsonl"
: > "$report"
find "$BUILD_DIR" -name '*.gcda' -print0 |
  xargs -0 -n 32 gcov -t --json-format >> "$report"

python3 - "$report" "$BASELINE" "$BUILD_DIR/coverage-report.txt" <<'EOF'
import collections
import json
import os
import sys

report_path, baseline_path, out_path = sys.argv[1:4]
root = os.getcwd()

# (file, line) -> ever covered. Headers are compiled into many TUs
# with independent counts; a line is covered if any TU covered it.
line_hit = {}
with open(report_path) as report:
    for doc in report:
        doc = doc.strip()
        if not doc:
            continue
        for f in json.loads(doc)["files"]:
            path = os.path.relpath(os.path.join(root, f["file"]), root)
            if not path.startswith("src/"):
                continue
            for ln in f["lines"]:
                key = (path, ln["line_number"])
                line_hit[key] = line_hit.get(key, False) or ln["count"] > 0

if not line_hit:
    sys.exit("check_coverage: no src/ lines in the gcov report — "
             "was the build configured with RSF_COVERAGE=ON?")

scopes = collections.defaultdict(lambda: [0, 0])  # scope -> [hit, total]
for (path, _), hit in line_hit.items():
    component = "/".join(path.split("/")[:2])  # src/<component>
    for scope in ("overall", component):
        scopes[scope][1] += 1
        scopes[scope][0] += hit

floors = {}
with open(baseline_path) as baseline:
    for raw in baseline:
        raw = raw.split("#", 1)[0].strip()
        if raw:
            scope, floor = raw.split()
            floors[scope] = float(floor)

lines = [f"{'scope':<16} {'lines':>8} {'covered':>8} {'pct':>7}  floor"]
failed = []
for scope in sorted(scopes, key=lambda s: (s != "overall", s)):
    hit, total = scopes[scope]
    pct = 100.0 * hit / total
    floor = floors.get(scope)
    mark = ""
    if floor is not None and pct < floor:
        mark = "  << BELOW FLOOR"
        failed.append(scope)
    lines.append(f"{scope:<16} {total:>8} {hit:>8} {pct:>6.1f}%  "
                 f"{'-' if floor is None else floor}{mark}")
for scope in floors:
    if scope not in scopes:
        failed.append(scope)
        lines.append(f"{scope:<16} {'-':>8} {'-':>8} {'-':>7}  "
                     f"{floors[scope]}  << SCOPE MISSING")

text = "\n".join(lines)
print(text)
with open(out_path, "w") as out:
    out.write(text + "\n")
if failed:
    sys.exit(f"check_coverage: below baseline floor: {', '.join(failed)}")
print("check_coverage: all floors hold")
EOF
