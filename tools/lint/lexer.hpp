// rsf-lint — a minimal C++ lexer good enough to check the repo's
// determinism contract.
//
// The lexer is NOT a compiler frontend: it tokenizes identifiers,
// punctuation, literals and numbers, strips comments and preprocessor
// lines, and records `// rsf-lint: <directive>(<reason>)` annotations
// with the line they attach to. Everything rule-shaped lives in
// rules.cpp on top of this token stream. The deliberate trade: the
// rules see every translation unit (headers included) without needing
// a compiler, headers, or flags — at the cost of name-based rather
// than type-based resolution, which the annotation escape hatch and
// the baseline ratchet absorb. The optional libclang frontend
// (clang_frontend.cpp, built only when RSF_LINT_WITH_LIBCLANG finds
// clang-c/Index.h) cross-checks the D2 loop rule on a real AST.
#pragma once

#include <string>
#include <vector>

namespace rsflint {

struct Token {
  enum class Kind { Ident, Punct, String, CharLit, Number, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 0;
};

/// One `// rsf-lint: directive(reason)` marker. It suppresses a
/// matching finding on the comment's own line or on the next code
/// line (so it can ride at end-of-line or on the line above).
struct Annotation {
  std::string directive;
  std::string reason;
  int comment_line = 0;
  int code_line = 0;  // first token line after the comment (0 if none)
  bool malformed = false;
};

struct SourceFile {
  std::string path;
  std::vector<std::string> lines;   // raw source, 1-based via line_text
  std::vector<Token> tokens;        // comments/preprocessor stripped
  std::vector<Annotation> annotations;

  /// Tokenize `content`. Returns false only on internal errors (the
  /// lexer is total over byte strings — malformed source still lexes).
  bool lex(const std::string& content);

  [[nodiscard]] const std::string& line_text(int line) const;
  [[nodiscard]] bool has_annotation(const std::string& directive, int line) const;
};

/// Squeeze runs of whitespace to one space and trim — the stable
/// fingerprint used to match findings against baseline entries across
/// line-number drift.
[[nodiscard]] std::string normalize_ws(const std::string& s);

}  // namespace rsflint
