#include "rules.hpp"

#include <algorithm>
#include <map>
#include <optional>

namespace rsflint {

namespace {

using Toks = std::vector<Token>;

const std::set<std::string> kUnorderedTypes = {"unordered_map", "unordered_set",
                                               "unordered_multimap", "unordered_multiset"};
const std::set<std::string> kWallClocks = {"system_clock", "steady_clock",
                                           "high_resolution_clock"};
const std::set<std::string> kClockCalls = {"clock_gettime", "gettimeofday", "timespec_get",
                                           "getenv", "sleep_for", "sleep_until"};
// Non-trivially-copyable std:: types whose by-value capture forces a
// scheduled lambda onto the cold std::function arm (D4).
const std::set<std::string> kNontrivialTypes = {
    "string", "basic_string", "vector", "deque", "list", "map", "multimap", "set",
    "multiset", "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "shared_ptr", "unique_ptr", "function"};
const std::set<std::string> kScheduleCalls = {"schedule_at", "schedule_after",
                                              "schedule_weak_at", "schedule_weak_after"};
const std::set<std::string> kKnownDirectives = {"order-insensitive", "unguarded-slot-ok",
                                                "cold-event", "nondet-ok"};

/// Per sibling-pair (same path stem: foo.hpp + foo.cpp) symbol table.
/// Name-based and file-local by design: a `cb` declared std::function
/// in one component must not taint every `cb` in the repo.
struct FileSymbols {
  std::map<std::string, int> unordered_vars;  // name -> decl line
  std::set<std::string> slotpool_vars;
  std::set<std::string> stdfunction_vars;
  std::set<std::string> nontrivial_vars;
};

struct Aliases {
  std::set<std::string> unordered;      // using Foo = std::unordered_map<...>
  std::set<std::string> stdfunction;    // using Cb = std::function<...>
  std::set<std::string> smallfunction;  // using Cb = core::SmallFunction<...> (inline-safe)
};

std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    return path.substr(0, dot);
  }
  return path;
}

const Token& tk(const Toks& t, std::size_t i) {
  static const Token end{Token::Kind::End, "", 0};
  return i < t.size() ? t[i] : end;
}
bool is_ident(const Token& t, const char* s) {
  return t.kind == Token::Kind::Ident && t.text == s;
}
bool is_punct(const Token& t, const char* s) {
  return t.kind == Token::Kind::Punct && t.text == s;
}
/// Is token i preceded by `.` or `->` (a member access, not a free
/// name)?
bool member_access(const Toks& t, std::size_t i) {
  if (i == 0) return false;
  if (is_punct(tk(t, i - 1), ".")) return true;
  return i >= 2 && is_punct(tk(t, i - 1), ">") && is_punct(tk(t, i - 2), "-");
}
/// Skip a balanced <...> starting at `open` (which must be '<').
/// Returns the index just past the matching '>', or npos on failure.
std::size_t skip_angles(const Toks& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], "<")) ++depth;
    else if (is_punct(t[i], ">")) {
      if (--depth == 0) return i + 1;
    } else if (is_punct(t[i], ";") || is_punct(t[i], "{") || t[i].kind == Token::Kind::End) {
      return std::string::npos;  // not a template argument list
    }
  }
  return std::string::npos;
}
/// Skip a balanced (...) / [...] / {...} starting at `open`.
std::size_t skip_group(const Toks& t, std::size_t open, const char* o, const char* c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (is_punct(t[i], o)) ++depth;
    else if (is_punct(t[i], c) && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// After a type spelled at [i .. type_end), recognise `qualifiers NAME
/// terminator` as a variable/parameter declaration and return NAME's
/// token index.
std::optional<std::size_t> decl_name_at(const Toks& t, std::size_t j) {
  while (is_punct(tk(t, j), "&") || is_punct(tk(t, j), "*") || is_ident(tk(t, j), "const")) {
    ++j;
  }
  if (tk(t, j).kind != Token::Kind::Ident) return std::nullopt;
  const Token& next = tk(t, j + 1);
  if (is_punct(next, ";") || is_punct(next, "=") || is_punct(next, "{") ||
      is_punct(next, ",") || is_punct(next, ")")) {
    return j;
  }
  return std::nullopt;
}

struct Capture {
  bool by_ref = false;
  std::string name;                // first identifier ("" for [=] / [&])
  std::vector<std::string> init;   // identifiers in the initializer, if any
};

struct Lambda {
  std::size_t intro = 0;  // token index of '['
  int line = 0;
  std::size_t body_begin = 0, body_end = 0;  // token range of {...}, exclusive
  std::vector<Capture> captures;
};

/// Lambda-introducer heuristic: '[' in expression position. Subscripts
/// (prev is an identifier, ')', ']' or a literal) and attributes
/// ('[[') are excluded.
bool lambda_position(const Toks& t, std::size_t i) {
  if (is_punct(tk(t, i + 1), "[")) return false;  // [[attribute]]
  if (i == 0) return true;
  const Token& p = t[i - 1];
  if (p.kind == Token::Kind::Ident) return p.text == "return" || p.text == "co_return";
  if (p.kind == Token::Kind::Number || p.kind == Token::Kind::String ||
      p.kind == Token::Kind::CharLit) {
    return false;
  }
  if (is_punct(p, ")") || is_punct(p, "]") || is_punct(p, "[")) return false;
  return true;  // ( , = { ; : < > ? ! & | + - * / % ...
}

std::vector<Lambda> find_lambdas(const Toks& t) {
  std::vector<Lambda> out;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t[i], "[") || !lambda_position(t, i)) continue;
    const std::size_t close = skip_group(t, i, "[", "]");
    if (close == std::string::npos) continue;
    // Between ']' and '{': an optional parameter list, specifiers and
    // a trailing return type. Anything statement-ending means this
    // was not a lambda after all.
    std::size_t j = close;
    bool ok = false;
    while (j < t.size()) {
      if (is_punct(t[j], "{")) { ok = true; break; }
      if (is_punct(t[j], "(")) {
        j = skip_group(t, j, "(", ")");
        if (j == std::string::npos) break;
        continue;
      }
      if (is_punct(t[j], ";") || is_punct(t[j], ",") || is_punct(t[j], ")") ||
          is_punct(t[j], "}") || is_punct(t[j], "]") || t[j].kind == Token::Kind::End) {
        break;
      }
      ++j;
    }
    if (!ok) continue;
    Lambda lam;
    lam.intro = i;
    lam.line = t[i].line;
    lam.body_begin = j + 1;
    lam.body_end = skip_group(t, j, "{", "}");
    if (lam.body_end == std::string::npos) continue;
    --lam.body_end;  // exclude the closing '}'
    // Parse the capture list: top-level comma-separated segments.
    std::size_t seg = i + 1;
    int depth = 0;
    Capture cur;
    bool saw_eq = false;
    auto flush = [&] {
      if (cur.by_ref || saw_eq || !cur.name.empty()) lam.captures.push_back(cur);
      cur = Capture{};
      saw_eq = false;
    };
    for (std::size_t k = seg; k < close - 1; ++k) {
      const Token& c = t[k];
      if (is_punct(c, "(") || is_punct(c, "[") || is_punct(c, "{") || is_punct(c, "<")) ++depth;
      if (is_punct(c, ")") || is_punct(c, "]") || is_punct(c, "}") || is_punct(c, ">")) --depth;
      if (depth == 0 && is_punct(c, ",")) { flush(); continue; }
      if (is_punct(c, "&") && cur.name.empty() && !saw_eq) cur.by_ref = true;
      else if (is_punct(c, "=") && depth == 0 && !saw_eq) saw_eq = true;
      else if (c.kind == Token::Kind::Ident) {
        if (saw_eq) cur.init.push_back(c.text);
        else if (cur.name.empty()) cur.name = c.text;
      }
    }
    flush();
    out.push_back(std::move(lam));
  }
  return out;
}

struct Analyzer {
  const AnalyzerConfig& cfg;
  Aliases aliases;
  std::map<std::string, FileSymbols> symbols;  // keyed by path stem
  std::vector<Finding> findings;

  void report(const SourceFile& f, int line, const std::string& rule,
              const std::string& message) {
    findings.push_back(
        Finding{rule, f.path, line, message, normalize_ws(f.line_text(line))});
  }

  // ---- pass A1: type aliases (global, so a typedef in one header is
  // understood at every use site) ----
  void collect_aliases(const SourceFile& f) {
    const Toks& t = f.tokens;
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
      if (!is_ident(t[i], "using") || t[i + 1].kind != Token::Kind::Ident ||
          !is_punct(t[i + 2], "=")) {
        continue;
      }
      const std::string& name = t[i + 1].text;
      for (std::size_t j = i + 3; j < t.size() && !is_punct(t[j], ";"); ++j) {
        if (t[j].kind != Token::Kind::Ident) continue;
        if (kUnorderedTypes.count(t[j].text) > 0) {
          aliases.unordered.insert(name);
          break;
        }
        if (t[j].text == "function" && j > 0 && is_punct(t[j - 1], ":")) {
          aliases.stdfunction.insert(name);
          break;
        }
        if (t[j].text == "SmallFunction") {
          aliases.smallfunction.insert(name);
          break;
        }
        if (aliases.stdfunction.count(t[j].text) > 0) {
          aliases.stdfunction.insert(name);
          break;
        }
      }
    }
  }

  // ---- pass A2: variable/member/parameter declarations ----
  void collect_decls(const SourceFile& f) {
    FileSymbols& sym = symbols[stem_of(f.path)];
    const Toks& t = f.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::Ident || member_access(t, i)) continue;
      const std::string& w = t[i].text;

      const bool unordered_type =
          kUnorderedTypes.count(w) > 0 || aliases.unordered.count(w) > 0;
      const bool stdfn_type = (w == "function" && i > 0 && is_punct(t[i - 1], ":")) ||
                              aliases.stdfunction.count(w) > 0;
      const bool pool_type = w == "SlotPool";
      const bool nontrivial_type = i > 0 && is_punct(t[i - 1], ":") &&
                                   kNontrivialTypes.count(w) > 0;
      if (!unordered_type && !stdfn_type && !pool_type && !nontrivial_type) continue;

      std::size_t j = i + 1;
      if (is_punct(tk(t, j), "<")) {
        j = skip_angles(t, j);
        if (j == std::string::npos) continue;
      } else if (pool_type || kUnorderedTypes.count(w) > 0 ||
                 (w == "function" && stdfn_type)) {
        continue;  // the real templates always carry arguments at a type use
      }
      const auto name_at = decl_name_at(t, j);
      if (!name_at) continue;
      const std::string& var = t[*name_at].text;
      const int line = t[*name_at].line;

      if (pool_type) sym.slotpool_vars.insert(var);
      if (stdfn_type) sym.stdfunction_vars.insert(var);
      if (nontrivial_type || stdfn_type || unordered_type) sym.nontrivial_vars.insert(var);
      if (unordered_type) {
        sym.unordered_vars.emplace(var, line);
        if (cfg.enabled("D2") && !f.has_annotation("order-insensitive", line)) {
          report(f, line, "D2",
                 "unordered container '" + var +
                     "' declared without an order-insensitivity justification; annotate "
                     "`// rsf-lint: order-insensitive(<why>)` or use an ordered container");
        }
      }
    }
  }

  // ---- pass B rules ----
  void check_annotations(const SourceFile& f) {
    if (!cfg.enabled("D0")) return;
    for (const Annotation& a : f.annotations) {
      if (a.malformed) {
        report(f, a.comment_line, "D0",
               "malformed rsf-lint annotation: `" + a.directive +
                   "` needs a non-empty (reason)");
      } else if (kKnownDirectives.count(a.directive) == 0) {
        report(f, a.comment_line, "D0",
               "unknown rsf-lint directive `" + a.directive + "`");
      }
    }
  }

  void check_d1(const SourceFile& f) {
    if (!cfg.enabled("D1")) return;
    const Toks& t = f.tokens;
    auto flag = [&](std::size_t i, const std::string& what) {
      if (!f.has_annotation("nondet-ok", t[i].line)) {
        report(f, t[i].line, "D1", what + " is a nondeterminism source; simulation code "
                                   "must draw from sim::Random / SimTime only");
      }
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::Ident || member_access(t, i)) continue;
      const std::string& w = t[i].text;
      if (w == "random_device") { flag(i, "std::random_device"); continue; }
      if (kWallClocks.count(w) > 0) { flag(i, "wall clock std::chrono::" + w); continue; }
      if (kClockCalls.count(w) > 0 && is_punct(tk(t, i + 1), "(")) { flag(i, w + "()"); continue; }
      if ((w == "rand" || w == "srand" || w == "time") && is_punct(tk(t, i + 1), "(")) {
        // Qualified by anything other than std:: (sim::time, x::rand)
        // is someone else's symbol.
        if (i >= 2 && is_punct(t[i - 1], ":") && is_punct(t[i - 2], ":") &&
            !(i >= 3 && is_ident(t[i - 3], "std"))) {
          continue;
        }
        flag(i, w + "()");
        continue;
      }
      if (w == "reinterpret_cast" && is_punct(tk(t, i + 1), "<")) {
        const std::size_t end = skip_angles(t, i + 1);
        if (end == std::string::npos) continue;
        for (std::size_t j = i + 2; j + 1 < end; ++j) {
          if (t[j].kind == Token::Kind::Ident &&
              (t[j].text == "uintptr_t" || t[j].text == "intptr_t" ||
               t[j].text == "size_t")) {
            flag(i, "pointer-identity laundering (reinterpret_cast<" + t[j].text + ">)");
            break;
          }
        }
        continue;
      }
      if (w == "hash" && is_punct(tk(t, i + 1), "<")) {
        const std::size_t end = skip_angles(t, i + 1);
        if (end == std::string::npos) continue;
        for (std::size_t j = i + 2; j + 1 < end; ++j) {
          if (is_punct(t[j], "*")) {
            flag(i, "hashing a pointer value (std::hash over a pointer type)");
            break;
          }
        }
      }
    }
  }

  void check_d2_loops(const SourceFile& f) {
    if (!cfg.enabled("D2")) return;
    const Toks& t = f.tokens;
    const FileSymbols& sym = symbols[stem_of(f.path)];
    auto unordered_name = [&](const Token& tok) {
      return tok.kind == Token::Kind::Ident &&
             (sym.unordered_vars.count(tok.text) > 0 ||
              aliases.unordered.count(tok.text) > 0 ||
              kUnorderedTypes.count(tok.text) > 0);
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      // Range-for whose range expression names an unordered container.
      if (is_ident(t[i], "for") && is_punct(tk(t, i + 1), "(")) {
        const std::size_t end = skip_group(t, i + 1, "(", ")");
        if (end == std::string::npos) continue;
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t j = i + 1; j + 1 < end; ++j) {
          if (is_punct(t[j], "(")) ++depth;
          if (is_punct(t[j], ")")) --depth;
          if (depth == 1 && is_punct(t[j], ":") && !is_punct(tk(t, j - 1), ":") &&
              !is_punct(tk(t, j + 1), ":")) {
            colon = j;
            break;
          }
        }
        if (colon == std::string::npos) continue;
        for (std::size_t j = colon + 1; j + 1 < end; ++j) {
          if (unordered_name(t[j])) {
            if (!f.has_annotation("order-insensitive", t[i].line)) {
              report(f, t[i].line, "D2",
                     "iteration over unordered container '" + t[j].text +
                         "': the visit order is nondeterministic and must not become "
                         "observable (annotate `// rsf-lint: order-insensitive(<why>)` "
                         "only when it provably cannot)");
            }
            break;
          }
        }
        continue;
      }
      // Iterator-style loops: unordered_var.begin() / .cbegin().
      if (t[i].kind == Token::Kind::Ident && sym.unordered_vars.count(t[i].text) > 0 &&
          !member_access(t, i) && is_punct(tk(t, i + 1), ".") &&
          (is_ident(tk(t, i + 2), "begin") || is_ident(tk(t, i + 2), "cbegin")) &&
          is_punct(tk(t, i + 3), "(")) {
        if (!f.has_annotation("order-insensitive", t[i].line)) {
          report(f, t[i].line, "D2",
                 "iterator over unordered container '" + t[i].text +
                     "': the visit order is nondeterministic and must not become "
                     "observable");
        }
      }
    }
  }

  void check_d3(const SourceFile& f, const std::vector<Lambda>& lambdas) {
    if (!cfg.enabled("D3")) return;
    const Toks& t = f.tokens;
    const FileSymbols& sym = symbols[stem_of(f.path)];
    if (sym.slotpool_vars.empty()) return;
    for (const Lambda& lam : lambdas) {
      for (const std::string& pool : sym.slotpool_vars) {
        bool guarded = false;
        for (std::size_t i = lam.body_begin; i < lam.body_end; ++i) {
          if (t[i].kind != Token::Kind::Ident) continue;
          const std::string& w = t[i].text;
          if (w == "is_live" || w == "get_live" || w == "maybe_recycle" || w == "claim" ||
              w.rfind("live", 0) == 0) {
            guarded = true;
            continue;
          }
          if (w == pool && !member_access(t, i) && is_punct(tk(t, i + 1), "[") &&
              !guarded) {
            if (!f.has_annotation("unguarded-slot-ok", t[i].line) &&
                !f.has_annotation("unguarded-slot-ok", lam.line)) {
              report(f, t[i].line, "D3",
                     "lambda indexes SlotPool '" + pool +
                         "' without establishing liveness first (is_live/get_live/"
                         "claim); a captured slot index can outlive its slot");
            }
            break;  // one finding per (lambda, pool)
          }
        }
      }
    }
  }

  void check_d4(const SourceFile& f, const std::vector<Lambda>& lambdas) {
    if (!cfg.enabled("D4")) return;
    const Toks& t = f.tokens;
    const FileSymbols& sym = symbols[stem_of(f.path)];

    // Names pinned inline by a static_assert(is_inline_event_v<decltype(NAME)>).
    std::set<std::string> asserted;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (!is_ident(t[i], "is_inline_event_v")) continue;
      for (std::size_t j = i; j < std::min(t.size(), i + 8); ++j) {
        if (is_ident(t[j], "decltype") && is_punct(tk(t, j + 1), "(") &&
            tk(t, j + 2).kind == Token::Kind::Ident && is_punct(tk(t, j + 3), ")")) {
          asserted.insert(t[j + 2].text);
          break;
        }
      }
    }

    std::map<std::size_t, const Lambda*> lambda_at;
    for (const Lambda& lam : lambdas) lambda_at[lam.intro] = &lam;

    auto cold_capture = [&](const Lambda& lam) -> std::string {
      for (const Capture& c : lam.captures) {
        if (c.by_ref) continue;
        if (sym.stdfunction_vars.count(c.name) > 0) {
          return "captures std::function '" + c.name + "' by value";
        }
        if (sym.nontrivial_vars.count(c.name) > 0) {
          return "captures non-trivially-copyable '" + c.name + "' by value";
        }
        for (const std::string& id : c.init) {
          if (sym.stdfunction_vars.count(id) > 0 || sym.nontrivial_vars.count(id) > 0) {
            return "move/init-captures non-trivially-copyable '" + id + "'";
          }
        }
      }
      return "";
    };

    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != Token::Kind::Ident || kScheduleCalls.count(t[i].text) == 0 ||
          !is_punct(tk(t, i + 1), "(")) {
        continue;
      }
      const std::size_t end = skip_group(t, i + 1, "(", ")");
      if (end == std::string::npos) continue;
      // Last top-level argument.
      std::size_t arg = i + 2;
      int depth = 0;
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (is_punct(t[j], "(") || is_punct(t[j], "[") || is_punct(t[j], "{")) ++depth;
        if (is_punct(t[j], ")") || is_punct(t[j], "]") || is_punct(t[j], "}")) --depth;
        if (depth == 0 && is_punct(t[j], ",")) arg = j + 1;
      }
      const int call_line = t[i].line;
      if (f.has_annotation("cold-event", call_line)) continue;

      std::string why;
      int at_line = call_line;
      if (is_punct(tk(t, arg), "[")) {
        const auto it = lambda_at.find(arg);
        if (it == lambda_at.end()) continue;
        if (f.has_annotation("cold-event", it->second->line)) continue;
        why = cold_capture(*it->second);
        at_line = it->second->line;
      } else {
        // A lone identifier (or std::move(identifier)).
        std::size_t id = arg;
        if (is_ident(t[arg], "std") && is_punct(tk(t, arg + 1), ":") &&
            is_ident(tk(t, arg + 3), "move")) {
          id = arg + 5;  // std :: move ( X
        }
        if (tk(t, id).kind != Token::Kind::Ident) continue;
        const std::string& name = t[id].text;
        if (asserted.count(name) > 0) continue;
        if (sym.stdfunction_vars.count(name) > 0) {
          why = "'" + name + "' is a std::function";
        } else {
          // A named lambda: find `name = [` and re-use its captures.
          for (std::size_t j = 0; j + 2 < t.size(); ++j) {
            if (is_ident(t[j], name.c_str()) && is_punct(tk(t, j + 1), "=") &&
                is_punct(tk(t, j + 2), "[")) {
              const auto it = lambda_at.find(j + 2);
              if (it != lambda_at.end()) {
                if (f.has_annotation("cold-event", it->second->line)) { why.clear(); break; }
                why = cold_capture(*it->second);
              }
              break;
            }
          }
        }
      }
      if (!why.empty()) {
        report(f, at_line, "D4",
               "event rides the cold std::function arm (" + why +
                   "); hot paths must stay inline-eligible — pin with "
                   "static_assert(sim::is_inline_event_v<...>), use "
                   "core::SmallFunction, or annotate `// rsf-lint: cold-event(<why>)`");
      }
    }
  }

  void check_d5(const SourceFile& f) {
    if (!cfg.enabled("D5") || !cfg.metrics_doc_loaded) return;
    static const std::vector<std::string> kPrefixes = {"net.", "crc.", "spine.",
                                                       "fleet.", "plp.", "chaos."};
    for (const Token& tok : f.tokens) {
      if (tok.kind != Token::Kind::String) continue;
      const std::string& s = tok.text;
      bool prefixed = false;
      for (const std::string& p : kPrefixes) {
        if (s.size() >= p.size() && s.compare(0, p.size(), p) == 0) {
          prefixed = true;
          break;
        }
      }
      if (!prefixed) continue;
      bool clean = true;
      for (char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.' &&
            c != '-') {
          clean = false;
          break;
        }
      }
      if (!clean) continue;
      // Per-link names normalize link<digits> to the documented
      // link<N> pattern (same convention as tools/check_docs.sh).
      std::string norm;
      for (std::size_t i = 0; i < s.size();) {
        if (s.compare(i, 4, "link") == 0 && i + 4 < s.size() &&
            std::isdigit(static_cast<unsigned char>(s[i + 4]))) {
          norm += "link<N>";
          i += 4;
          while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
        } else {
          norm.push_back(s[i++]);
        }
      }
      if (cfg.metrics_doc.find(norm) == std::string::npos) {
        report(f, tok.line, "D5",
               "metric \"" + s + "\" is not documented in docs/METRICS.md (looked for \"" +
                   norm + "\"); new counters must land with their docs");
      }
    }
  }
};

}  // namespace

std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                             const AnalyzerConfig& cfg) {
  Analyzer a{cfg, {}, {}, {}};
  for (const SourceFile& f : files) a.collect_aliases(f);
  for (const SourceFile& f : files) a.collect_decls(f);
  for (const SourceFile& f : files) {
    const std::vector<Lambda> lambdas = find_lambdas(f.tokens);
    a.check_annotations(f);
    a.check_d1(f);
    a.check_d2_loops(f);
    a.check_d3(f, lambdas);
    a.check_d4(f, lambdas);
    a.check_d5(f);
  }
  std::sort(a.findings.begin(), a.findings.end(), [](const Finding& x, const Finding& y) {
    if (x.path != y.path) return x.path < y.path;
    if (x.line != y.line) return x.line < y.line;
    if (x.rule != y.rule) return x.rule < y.rule;
    return x.message < y.message;
  });
  a.findings.erase(std::unique(a.findings.begin(), a.findings.end(),
                               [](const Finding& x, const Finding& y) {
                                 return x.path == y.path && x.line == y.line &&
                                        x.rule == y.rule && x.message == y.message;
                               }),
                   a.findings.end());
  return a.findings;
}

}  // namespace rsflint
