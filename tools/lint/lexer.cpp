#include "lexer.hpp"

#include <cctype>

namespace rsflint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Parse an `rsf-lint:` comment body into an annotation. `text` is
/// the comment's content (without the // or /* */ markers).
bool parse_annotation(const std::string& text, int line, Annotation* out) {
  const std::string tag = "rsf-lint:";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return false;
  out->comment_line = line;
  std::size_t i = at + tag.size();
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  std::size_t d0 = i;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) || text[i] == '-')) {
    ++i;
  }
  out->directive = text.substr(d0, i - d0);
  // Reason: everything between the first '(' after the directive and
  // the last ')' in the comment, trimmed. A directive without a
  // non-empty reason is malformed — the contract requires the "why".
  const std::size_t open = text.find('(', i);
  const std::size_t close = text.rfind(')');
  if (out->directive.empty() || open == std::string::npos || close == std::string::npos ||
      close <= open) {
    out->malformed = true;
    return true;
  }
  std::string reason = text.substr(open + 1, close - open - 1);
  const std::size_t b = reason.find_first_not_of(" \t");
  const std::size_t e = reason.find_last_not_of(" \t");
  out->reason = b == std::string::npos ? "" : reason.substr(b, e - b + 1);
  out->malformed = out->reason.empty();
  return true;
}

}  // namespace

std::string normalize_ws(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  bool in_ws = true;  // leading whitespace dropped
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!in_ws) out.push_back(' ');
      in_ws = true;
    } else {
      out.push_back(c);
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

const std::string& SourceFile::line_text(int line) const {
  static const std::string empty;
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return empty;
  return lines[static_cast<std::size_t>(line) - 1];
}

bool SourceFile::has_annotation(const std::string& directive, int line) const {
  for (const Annotation& a : annotations) {
    if (a.malformed) continue;
    if (a.directive != directive) continue;
    if (a.comment_line == line || a.code_line == line) return true;
  }
  return false;
}

bool SourceFile::lex(const std::string& content) {
  lines.clear();
  tokens.clear();
  annotations.clear();
  {
    std::string cur;
    for (char c : content) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!cur.empty()) lines.push_back(cur);
  }

  // Annotations whose code_line is still unknown: index into
  // `annotations`, resolved when the next token lands.
  std::vector<std::size_t> pending;

  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool line_has_token = false;  // for preprocessor detection

  auto push = [&](Token::Kind kind, std::string text, int at_line) {
    tokens.push_back(Token{kind, std::move(text), at_line});
    for (std::size_t idx : pending) annotations[idx].code_line = at_line;
    pending.clear();
    line_has_token = true;
  };
  auto note_comment = [&](const std::string& text, int at_line) {
    Annotation a;
    if (parse_annotation(text, at_line, &a)) {
      annotations.push_back(a);
      pending.push_back(annotations.size() - 1);
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      line_has_token = false;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }
    // Preprocessor directive: '#' first on its line; swallow through
    // any backslash continuations.
    if (c == '#' && !line_has_token) {
      while (i < n) {
        if (content[i] == '\\' && i + 1 < n && content[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (content[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < n && content[j] != '\n') ++j;
      note_comment(content.substr(i + 2, j - i - 2), line);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++line;
        ++j;
      }
      note_comment(content.substr(i + 2, j - i - 2), start_line);
      i = j + 2 > n ? n : j + 2;
      continue;
    }
    // String literal (escape-aware).
    if (c == '"') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && content[j] != '"') {
        if (content[j] == '\\' && j + 1 < n) {
          text.push_back(content[j]);
          text.push_back(content[j + 1]);
          j += 2;
          continue;
        }
        if (content[j] == '\n') ++line;  // unterminated; keep going
        text.push_back(content[j]);
        ++j;
      }
      push(Token::Kind::String, text, line);
      i = j < n ? j + 1 : n;
      continue;
    }
    // Char literal.
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string text;
      while (j < n && content[j] != '\'') {
        if (content[j] == '\\' && j + 1 < n) {
          j += 2;
          text.push_back('\\');
          continue;
        }
        if (content[j] == '\n') break;
        text.push_back(content[j]);
        ++j;
      }
      push(Token::Kind::CharLit, text, line);
      i = j < n && content[j] == '\'' ? j + 1 : j;
      continue;
    }
    // Number (handles 1'000, 0x1F, 1e-9, 1.5f).
    if (digit(c) || (c == '.' && i + 1 < n && digit(content[i + 1]))) {
      std::size_t j = i;
      while (j < n) {
        const char d = content[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = content[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      push(Token::Kind::Number, content.substr(i, j - i), line);
      i = j;
      continue;
    }
    // Identifier — with the raw-string special case: R"delim(...)delim"
    // (and its L/u/U/u8 spellings) must not let the payload leak into
    // the token stream as punctuation.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(content[j])) ++j;
      std::string word = content.substr(i, j - i);
      const bool raw_prefix = word == "R" || word == "LR" || word == "uR" || word == "UR" ||
                              word == "u8R";
      if (raw_prefix && j < n && content[j] == '"') {
        std::size_t k = j + 1;
        std::string delim;
        while (k < n && content[k] != '(' && content[k] != '\n') delim.push_back(content[k++]);
        const std::string closer = ")" + delim + "\"";
        std::size_t body_start = k < n ? k + 1 : n;
        std::size_t end = content.find(closer, body_start);
        if (end == std::string::npos) end = n;
        for (std::size_t p = j; p < end && p < n; ++p) {
          if (content[p] == '\n') ++line;
        }
        push(Token::Kind::String, content.substr(body_start, end - body_start), line);
        i = end == n ? n : end + closer.size();
        continue;
      }
      push(Token::Kind::Ident, std::move(word), line);
      i = j;
      continue;
    }
    // Everything else: single-character punctuation ("::" arrives as
    // two ':' tokens; the rules match on neighbors where it matters).
    push(Token::Kind::Punct, std::string(1, c), line);
    ++i;
  }
  tokens.push_back(Token{Token::Kind::End, "", line});
  return true;
}

}  // namespace rsflint
