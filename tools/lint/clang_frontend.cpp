// rsf-lint — optional libclang (C API) cross-check frontend.
//
// Built only when the RSF_LINT_WITH_LIBCLANG CMake option finds
// clang-c/Index.h and libclang; the token frontend in rules.cpp is
// the canonical, dependency-free engine and the one the fixture suite
// gates. This frontend re-derives the D2 loop rule from a real AST
// (range-for statements whose range expression has an unordered
// container type) and reports TUs that fail to parse, catching the
// false-negative modes a token scan cannot see (iteration through a
// reference or an auto& alias bound to an unordered member).
//
// Findings carry the same D2 rule id and flow through the same
// baseline/annotation machinery in main.cpp.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include <clang-c/CXCompilationDatabase.h>
#include <clang-c/Index.h>

#include "rules.hpp"

namespace rsflint {

namespace {

std::string cx_to_string(CXString s) {
  const char* c = clang_getCString(s);
  std::string out = c != nullptr ? c : "";
  clang_disposeString(s);
  return out;
}

struct VisitCtx {
  std::vector<Finding>* findings;
  std::string file;
};

CXChildVisitResult visit(CXCursor cursor, CXCursor /*parent*/, CXClientData data) {
  auto* ctx = static_cast<VisitCtx*>(data);
  if (clang_getCursorKind(cursor) == CXCursor_CXXForRangeStmt) {
    // The range expression is the last child before the body; its
    // canonical type spelling names the container.
    CXType type = clang_getCursorType(cursor);
    (void)type;
    CXSourceLocation loc = clang_getCursorLocation(cursor);
    unsigned line = 0;
    CXFile cxfile;
    clang_getSpellingLocation(loc, &cxfile, &line, nullptr, nullptr);
    const std::string at_file = cx_to_string(clang_getFileName(cxfile));
    if (at_file != ctx->file) return CXChildVisit_Recurse;  // from an #include

    struct RangeProbe {
      bool unordered = false;
    } probe;
    clang_visitChildren(
        cursor,
        [](CXCursor child, CXCursor, CXClientData d) {
          auto* p = static_cast<RangeProbe*>(d);
          CXType t = clang_getCanonicalType(clang_getCursorType(child));
          const std::string spelling = cx_to_string(clang_getTypeSpelling(t));
          if (spelling.find("unordered_map") != std::string::npos ||
              spelling.find("unordered_set") != std::string::npos ||
              spelling.find("unordered_multimap") != std::string::npos ||
              spelling.find("unordered_multiset") != std::string::npos) {
            p->unordered = true;
          }
          return CXChildVisit_Break;  // first child is the range init expr
        },
        &probe);
    if (probe.unordered) {
      ctx->findings->push_back(Finding{
          "D2", ctx->file, static_cast<int>(line),
          "AST cross-check: range-for over an unordered container (libclang frontend)",
          ""});
    }
  }
  return CXChildVisit_Recurse;
}

}  // namespace

int clang_cross_check(const std::string& compdb_path, const std::vector<std::string>& files,
                      std::vector<Finding>* findings) {
  CXIndex index = clang_createIndex(/*excludeDeclarationsFromPCH=*/1,
                                    /*displayDiagnostics=*/0);
  CXCompilationDatabase db = nullptr;
  if (!compdb_path.empty()) {
    // libclang wants the *directory* holding compile_commands.json.
    std::string dir = compdb_path;
    const std::size_t slash = dir.find_last_of('/');
    dir = slash == std::string::npos ? "." : dir.substr(0, slash);
    CXCompilationDatabase_Error err = CXCompilationDatabase_NoError;
    db = clang_CompilationDatabase_fromDirectory(dir.c_str(), &err);
    if (err != CXCompilationDatabase_NoError) db = nullptr;
  }

  int parsed = 0;
  for (const std::string& file : files) {
    if (file.size() < 4 || file.compare(file.size() - 4, 4, ".cpp") != 0) continue;

    std::vector<std::string> arg_storage;
    if (db != nullptr) {
      CXCompileCommands cmds =
          clang_CompilationDatabase_getCompileCommands(db, file.c_str());
      if (clang_CompileCommands_getSize(cmds) > 0) {
        CXCompileCommand cmd = clang_CompileCommands_getCommand(cmds, 0);
        const unsigned n = clang_CompileCommand_getNumArgs(cmd);
        // Drop argv[0] (the compiler) and the trailing source file.
        for (unsigned i = 1; i + 1 < n; ++i) {
          arg_storage.push_back(cx_to_string(clang_CompileCommand_getArg(cmd, i)));
        }
      }
      clang_CompileCommands_dispose(cmds);
    }
    if (arg_storage.empty()) arg_storage = {"-std=c++20", "-Isrc"};

    std::vector<const char*> args;
    args.reserve(arg_storage.size());
    for (const std::string& a : arg_storage) args.push_back(a.c_str());

    CXTranslationUnit tu = nullptr;
    const CXErrorCode rc = clang_parseTranslationUnit2(
        index, file.c_str(), args.data(), static_cast<int>(args.size()), nullptr, 0,
        CXTranslationUnit_None, &tu);
    if (rc != CXError_Success || tu == nullptr) {
      std::cerr << "rsf-lint (libclang): failed to parse " << file << "\n";
      continue;
    }
    VisitCtx ctx{findings, file};
    clang_visitChildren(clang_getTranslationUnitCursor(tu), visit, &ctx);
    clang_disposeTranslationUnit(tu);
    ++parsed;
  }

  if (db != nullptr) clang_CompilationDatabase_dispose(db);
  clang_disposeIndex(index);
  std::cerr << "rsf-lint (libclang): cross-checked " << parsed << " TUs\n";
  return 0;
}

}  // namespace rsflint
