// rsf-lint — the determinism-contract rules.
//
// Rule ids (docs/ARCHITECTURE.md "Determinism contract" is the
// user-facing spec; tests/lint_fixtures/ is the executable one):
//
//   D0  annotation hygiene: every `// rsf-lint: directive(reason)`
//       must name a known directive and carry a non-empty reason.
//   D1  no nondeterminism sources: std::random_device, rand()/srand(),
//       wall clocks (system/steady/high_resolution_clock, time(),
//       clock_gettime, gettimeofday), getenv, sleeps, and
//       pointer-identity laundering (reinterpret_cast to
//       [u]intptr_t/size_t, std::hash over a pointer type).
//       Escape: nondet-ok(reason).
//   D2  unordered-container discipline: every unordered_map/set
//       declaration needs an order-insensitive(reason) justification,
//       and any range-for / .begin() iteration over one is flagged —
//       iteration order must never reach schedule_at, counter
//       emission, or RNG draws. Escape: order-insensitive(reason).
//   D3  SlotPool handle discipline: a lambda that indexes a SlotPool
//       must establish liveness first (is_live/get_live/claim or a
//       live_* helper) — a captured index can outlive its slot.
//       Escape: unguarded-slot-ok(reason).
//   D4  inline-event budget: a callable handed to schedule_* that
//       provably rides the cold std::function arm (captures or is a
//       std::function / other non-trivially-copyable value) is
//       flagged unless a static_assert(is_inline_event_v<...>) names
//       it. Escape: cold-event(reason).
//   D5  counter-name hygiene: every metric string literal
//       ("net.*", "crc.*", "spine.*", "fleet.*", "plp.*", "chaos.*")
//       must appear in docs/METRICS.md (link<digits> normalizes to
//       link<N>). No annotation escape — document the counter.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace rsflint {

struct Finding {
  std::string rule;
  std::string path;
  int line = 0;
  std::string message;
  std::string fingerprint;  // normalize_ws of the finding's source line
};

struct AnalyzerConfig {
  /// Empty set = all rules. D5 additionally requires metrics_doc.
  std::set<std::string> rules;
  std::string metrics_doc;  // full text of docs/METRICS.md
  bool metrics_doc_loaded = false;

  [[nodiscard]] bool enabled(const std::string& rule) const {
    return rules.empty() || rules.count(rule) > 0;
  }
};

/// Run every enabled rule over `files` (two global passes: symbol
/// collection, then checks). Findings are sorted by (path, line, rule).
[[nodiscard]] std::vector<Finding> analyze(const std::vector<SourceFile>& files,
                                           const AnalyzerConfig& cfg);

}  // namespace rsflint
