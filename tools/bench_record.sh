#!/usr/bin/env bash
# Bench-trajectory recorder: produces the BENCH_PR<N>.json snapshot
# committed at the repo root (schema documented in docs/BENCHMARKS.md).
#
# Recording protocol: the three throughput benchmarks are run as
# interleaved repetitions (A B C, A B C, ... rather than AAA BBB CCC)
# so slow drift in a shared/noisy host hits every benchmark equally,
# and the recorded number is the per-benchmark MEDIAN across
# repetitions. Single back-to-back runs on a loaded host can differ by
# ±25%; interleaved medians are the only numbers worth committing.
#
# Semantic anchors ride along: ext8's job_us counters and ext9's sweep
# job_us values are simulated results, not speeds — any PR that moves
# them changed behaviour, not performance.
#
# Since PR 7 the snapshot also records the ext9 sweep's wall time at
# --workers 1 vs --workers 4 (the arm-pool parallel sweep) plus the
# host's core count: a wall-time claim without the core count it was
# measured on is not reproducible.
#
# Usage:
#   tools/bench_record.sh [--pr N] [--build-dir DIR] [--reps N]
#                         [--baseline /path/to/old/micro_kernel]
#                         [--out FILE] [--smoke]
#
#   --pr N        trajectory index; default 7 (writes BENCH_PR<N>.json)
#   --baseline    also interleave an old micro_kernel binary and record
#                 median-vs-median speedups (local use; CI has no
#                 pre-change binary)
#   --smoke       CI mode: validate the schema of the NEWEST committed
#                 BENCH_PR<N>.json (highest N present, whatever --pr
#                 says), then take a quick fresh recording (3 reps,
#                 short min_time) to bench-trajectory-fresh.json for
#                 the artifact upload. Absolute numbers are NOT gated —
#                 shared runners are noisy.
set -euo pipefail
cd "$(dirname "$0")/.."

PR=7
BUILD_DIR=build
REPS=7
MIN_TIME=0.2
BASELINE=""
SMOKE=0
OUT=""

while [ $# -gt 0 ]; do
  case "$1" in
    --pr) PR="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --reps) REPS="$2"; shift 2 ;;
    --baseline) BASELINE="$2"; shift 2 ;;
    --out) OUT="$2"; shift 2 ;;
    --smoke) SMOKE=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

COMMITTED="BENCH_PR${PR}.json"
if [ "$SMOKE" = 1 ]; then
  REPS=3
  MIN_TIME=0.05
  OUT="${OUT:-bench-trajectory-fresh.json}"
  # Smoke validates the newest committed snapshot, not a hard-coded
  # index — otherwise every trajectory PR would have to edit this
  # script just to keep CI honest about its own file.
  NEWEST=$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1 || true)
  if [ -n "$NEWEST" ]; then
    COMMITTED="$NEWEST"
  fi
else
  OUT="${OUT:-$COMMITTED}"
fi

MICRO="$BUILD_DIR/bench/micro_kernel"
EXT8="$BUILD_DIR/bench/ext8_multirack_shuffle"
EXT9="$BUILD_DIR/bench/ext9_fleet_sweep"
for bin in "$MICRO" "$EXT8" "$EXT9"; do
  if [ ! -x "$bin" ]; then
    echo "missing bench binary: $bin (build with -DRSF_BUILD_BENCHES=ON)" >&2
    exit 1
  fi
done

validate_schema() {
  python3 - "$1" <<'PY'
import json, sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)

def die(msg):
    sys.exit(f"SCHEMA ERROR in {path}: {msg}")

if doc.get("schema") != "rsf-bench-trajectory-v1":
    die("schema tag must be rsf-bench-trajectory-v1")
for key in ("pr", "commit", "config", "throughput", "semantic"):
    if key not in doc:
        die(f"missing top-level key {key!r}")
for name in ("BM_SimulatorSelfRescheduling", "BM_PacketTransportOneFlow",
             "BM_MultiRackShuffle/4"):
    entry = doc["throughput"].get(name)
    if not isinstance(entry, dict):
        die(f"throughput missing benchmark {name!r}")
    v = entry.get("median_items_per_second")
    if not isinstance(v, (int, float)) or v <= 0:
        die(f"throughput[{name!r}] needs a positive median_items_per_second")
ext8 = doc["semantic"].get("ext8_job_us")
if not isinstance(ext8, dict) or not ext8:
    die("semantic.ext8_job_us must be a non-empty object")
if any(not isinstance(v, (int, float)) for v in ext8.values()):
    die("semantic.ext8_job_us values must be numbers")
ext9 = doc["semantic"].get("ext9_job_us")
if not isinstance(ext9, list) or not ext9:
    die("semantic.ext9_job_us must be a non-empty array")
for point in ext9:
    for key in ("scenario", "loss_prob", "utilization_weight",
                "packet_hot_job_us", "packet_background_job_us",
                "reserved_hot_job_us", "reserved_background_job_us"):
        if key not in point:
            die(f"ext9 point missing {key!r}")
if isinstance(doc.get("pr"), int) and doc["pr"] >= 7:
    par = doc.get("parallel")
    if not isinstance(par, dict):
        die("pr >= 7 snapshots must carry a 'parallel' block")
    for key in ("host_cores", "ext9_wall_ms_workers1", "ext9_wall_ms_workers4",
                "ext9_speedup_4w"):
        v = par.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            die(f"parallel[{key!r}] must be a positive number")
print(f"schema OK: {path}")
PY
}

if [ "$SMOKE" = 1 ]; then
  if [ ! -f "$COMMITTED" ]; then
    echo "missing committed trajectory file: $COMMITTED" >&2
    exit 1
  fi
  validate_schema "$COMMITTED"
fi

# --- interleaved repetitions ---
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

echo "recording: $REPS interleaved repetitions, min_time=${MIN_TIME}s" >&2
for rep in $(seq 1 "$REPS"); do
  "$MICRO" --benchmark_filter='BM_SimulatorSelfRescheduling$|BM_PacketTransportOneFlow$' \
           --benchmark_min_time="$MIN_TIME" --benchmark_format=json \
           > "$TMP/micro_new_$rep.json" 2>/dev/null
  "$EXT8" --benchmark_filter='BM_MultiRackShuffle/4$' \
          --benchmark_min_time="$MIN_TIME" --benchmark_format=json \
          > "$TMP/ext8_rep_$rep.json" 2>/dev/null
  if [ -n "$BASELINE" ]; then
    "$BASELINE" --benchmark_filter='BM_SimulatorSelfRescheduling$|BM_PacketTransportOneFlow$' \
                --benchmark_min_time="$MIN_TIME" --benchmark_format=json \
                > "$TMP/micro_old_$rep.json" 2>/dev/null
  fi
  echo "  rep $rep/$REPS done" >&2
done

# --- semantic anchors: one full deterministic run each ---
"$EXT8" --benchmark_min_time=0.05 --benchmark_format=json \
        > "$TMP/ext8_full.json" 2>/dev/null
"$EXT9" --json "$TMP/ext9.json" >/dev/null

# --- ext9 wall time, workers=1 vs 4 (arm-pool parallel sweep) ---
# Alternated reps for the same drift-resistance reason as the
# throughput interleave; the recorded value is the per-config median.
WALL_REPS=3
[ "$SMOKE" = 1 ] && WALL_REPS=1
: > "$TMP/wall.txt"
echo "timing ext9 sweep: workers 1 vs 4, $WALL_REPS rep(s) each" >&2
for rep in $(seq 1 "$WALL_REPS"); do
  for w in 1 4; do
    t0=$(date +%s%N)
    "$EXT9" --workers "$w" --json "$TMP/ext9_wall.json" >/dev/null
    t1=$(date +%s%N)
    echo "$w $(( (t1 - t0) / 1000000 ))" >> "$TMP/wall.txt"
  done
done

COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

python3 - "$TMP" "$OUT" "$PR" "$COMMIT" "$REPS" "$MIN_TIME" "$BASELINE" <<'PY'
import glob, json, os, statistics, sys

tmp, out, pr, commit, reps, min_time, baseline = sys.argv[1:8]

def samples(pattern, name, field):
    vals = []
    for path in glob.glob(f"{tmp}/{pattern}"):
        with open(path) as f:
            doc = json.load(f)
        for bench in doc["benchmarks"]:
            if bench["name"] == name:
                vals.append(bench[field])
    if not vals:
        sys.exit(f"no samples for {name} in {pattern}")
    return vals

throughput = {
    "BM_SimulatorSelfRescheduling": {
        "median_items_per_second": statistics.median(
            samples("micro_new_*.json", "BM_SimulatorSelfRescheduling",
                    "items_per_second"))},
    "BM_PacketTransportOneFlow": {
        "median_items_per_second": statistics.median(
            samples("micro_new_*.json", "BM_PacketTransportOneFlow",
                    "items_per_second"))},
    "BM_MultiRackShuffle/4": {
        "median_items_per_second": statistics.median(
            samples("ext8_rep_*.json", "BM_MultiRackShuffle/4", "events/s"))},
}

baseline_block = None
if baseline:
    baseline_block = {"binary": baseline}
    for name in ("BM_SimulatorSelfRescheduling", "BM_PacketTransportOneFlow"):
        old = statistics.median(
            samples("micro_old_*.json", name, "items_per_second"))
        new = throughput[name]["median_items_per_second"]
        baseline_block[name] = {
            "median_items_per_second": old,
            "speedup": round(new / old, 3),
        }

with open(f"{tmp}/ext8_full.json") as f:
    ext8 = {b["name"]: b["job_us"] for b in json.load(f)["benchmarks"]
            if "job_us" in b}

wall = {1: [], 4: []}
with open(f"{tmp}/wall.txt") as f:
    for line in f:
        w, ms = line.split()
        wall[int(w)].append(int(ms))
wall1 = statistics.median(wall[1])
wall4 = statistics.median(wall[4])
parallel = {
    "host_cores": os.cpu_count(),
    "ext9_wall_ms_workers1": wall1,
    "ext9_wall_ms_workers4": wall4,
    # > 1 only when the host has the cores to back it; commit the
    # host_cores alongside so the number is interpretable.
    "ext9_speedup_4w": round(wall1 / wall4, 3),
}

with open(f"{tmp}/ext9.json") as f:
    ext9 = [{
        "scenario": p["scenario"],
        "loss_prob": p["loss_prob"],
        "utilization_weight": p["utilization_weight"],
        "packet_hot_job_us": p["packet"]["hot_job_us"],
        "packet_background_job_us": p["packet"]["background_job_us"],
        "reserved_hot_job_us": p["reserved"]["hot_job_us"],
        "reserved_background_job_us": p["reserved"]["background_job_us"],
    } for p in json.load(f)["points"]]

doc = {
    "schema": "rsf-bench-trajectory-v1",
    "pr": int(pr),
    "commit": commit,
    "config": {
        "repetitions": int(reps),
        "benchmark_min_time": float(min_time),
        "interleaved": True,
    },
    "throughput": throughput,
    "baseline": baseline_block,
    "parallel": parallel,
    "semantic": {"ext8_job_us": ext8, "ext9_job_us": ext9},
}
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {out}")
PY

validate_schema "$OUT"
