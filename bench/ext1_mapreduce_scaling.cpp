// EXT1 — the paper's §2 motivating example, quantified.
//
// "Consider a MapReduce operation that requires transmission from all
// nodes. Since a reducer has to wait for data from all mappers, the
// slowest link pulls down the performance of an entire system."
//
// We run an all-to-all shuffle (mappers = top row, reducers = bottom
// row) over increasing rack sizes and compare three fabrics:
//   grid-static : dimension-order routing, no CRC (the baseline rack);
//   grid-crc    : CRC price routing on the same grid;
//   torus-crc   : CRC converts the grid to a torus first (Figure 2).
// Reported: job completion (the barrier) and the straggler ratio
// (max flow / median flow) — the slowest-link effect itself.
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using sim::SimTime;

struct Row {
  double job_ms = 0;
  double straggler = 0;
};

Row run_case(int side, bool use_crc, bool to_torus, phy::DataSize bytes_per_pair) {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = side;
  cfg.rack.height = side;
  cfg.rack.routing =
      use_crc ? fabric::RoutingPolicy::kMinCost : fabric::RoutingPolicy::kDimensionOrder;
  cfg.enable_crc = use_crc;
  cfg.crc.epoch = 100_us;
  runtime::FabricRuntime rt(cfg);

  if (use_crc) {
    rt.start();
    if (to_torus) {
      bool done = false;
      rt.controller().request_grid_to_torus(
          [&](const core::TopologyPlanner::Report&) { done = true; });
      rt.run_until();
      if (!done) return {};
    }
  }

  workload::ShuffleConfig shuffle_cfg;
  for (int x = 0; x < side; ++x) {
    shuffle_cfg.mappers.push_back(rt.node_at(x, 0));
    shuffle_cfg.reducers.push_back(rt.node_at(x, side - 1));
  }
  shuffle_cfg.bytes_per_pair = bytes_per_pair;
  shuffle_cfg.start = rt.now();
  auto& job = rt.add_shuffle(shuffle_cfg);
  std::optional<workload::ShuffleResult> result;
  job.run([&](const workload::ShuffleResult& r) { result = r; });
  rt.run_until();
  rt.stop();
  rt.run_until();

  Row row;
  if (result) {
    row.job_ms = result->job_completion.ms();
    row.straggler = result->straggler_ratio();
  }
  return row;
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header(
      "EXT1", "the §2 MapReduce motivation",
      "the slowest link gates the job; the adaptive fabric shortens the tail");
  for (double kb : {4.0, 128.0}) {
    const auto size = DataSize::kilobytes(kb);
    telemetry::Table table(
        std::string("Shuffle completion vs rack size, ") + size.to_string() +
            "/pair (row -> row all-to-all)",
        {"nodes", "grid-static_ms", "straggler", "grid-crc_ms", "straggler ",
         "torus-crc_ms", "straggler  ", "speedup"});
    for (int side : {4, 6, 8}) {
      const Row grid_static = run_case(side, /*use_crc=*/false, /*to_torus=*/false, size);
      const Row grid_crc = run_case(side, /*use_crc=*/true, /*to_torus=*/false, size);
      const Row torus_crc = run_case(side, /*use_crc=*/true, /*to_torus=*/true, size);
      table.row()
          .cell(side * side)
          .cell(grid_static.job_ms, 3)
          .cell(grid_static.straggler, 2)
          .cell(grid_crc.job_ms, 3)
          .cell(grid_crc.straggler, 2)
          .cell(torus_crc.job_ms, 3)
          .cell(torus_crc.straggler, 2)
          .cell(grid_static.job_ms / std::max(1e-9, torus_crc.job_ms), 2);
    }
    table.print();
  }
  std::printf(
      "Shape check: for the latency-bound shuffle (4KB/pair) the torus wins and the\n"
      "speedup grows with rack size (wraparounds shorten exactly the paths that\n"
      "scale worst). For the bandwidth-bound shuffle (128KB/pair) the torus only\n"
      "ties: the conversion reorganises lanes, it cannot mint new capacity.\n");
  return 0;
}
