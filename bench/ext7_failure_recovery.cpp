// EXT7 — link health: failure detection and dark-lane self-healing.
//
// The CRC prices links by "link health" (§3.2) and PLP #5 exposes
// per-lane statistics for exactly this purpose. This bench kills a
// lane of a busy link mid-run and reports the millisecond-by-
// millisecond timeline for three fabrics:
//   static         : no CRC — traffic on the broken path blackholes
//                    until retries exhaust;
//   crc-prices     : the closed loop prices the dark link infinite and
//                    routes around it (degraded but alive);
//   crc-healing    : health manager additionally re-provisions the
//                    link from dark spare lanes (full capacity back).
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using sim::SimTime;

struct Timeline {
  std::vector<double> p99_us_per_ms;  // packet p99 per 1 ms bucket
  std::uint64_t failed_flows = 0;
  std::uint64_t reroute_waits = 0;
  double recovery_ms = -1;  // when a full-width 0-1 link was back
};

Timeline run_mode(bool use_crc, bool healing) {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 4;
  cfg.rack.height = 4;
  cfg.rack.lanes_per_cable = 4;  // dark spares available
  cfg.rack.lanes_per_link = 2;
  cfg.enable_crc = use_crc;
  cfg.crc.epoch = 100_us;
  cfg.crc.enable_health_manager = healing;
  runtime::FabricRuntime rt(cfg);
  auto& sim = rt.sim();
  rt.start();

  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 60_us;
  gen_cfg.horizon = 12_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(32));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(16), gen_cfg);
  gen.start();

  // Kill a lane of the (0,0)-(1,0) link at t = 4 ms.
  sim.schedule_at(4_ms, [&rt] {
    const auto victim = rt.topology().link_between(0, 1);
    if (victim) {
      rt.plant().fail_lane(
          phy::LaneRef{rt.plant().link(*victim).segments().front().cable, 0});
    }
  });

  Timeline tl;
  // Millisecond buckets of packet p99 (weak sampling loop).
  std::function<void()> sample = [&sim, &rt, &tl, &sample] {
    // Bucket p99 approximated from the cumulative histogram delta via
    // a fresh histogram would need full samples; report cumulative p99
    // trend instead (monotone under degradation, relaxes on recovery).
    tl.p99_us_per_ms.push_back(rt.network().packet_latency().p99() * 1e-6);
    if (sim.now() < 12_ms) sim.schedule_weak_after(1_ms, sample);
  };
  sim.schedule_weak_after(1_ms, sample);

  // Detect recovery: full-width ready link between 0 and 1 after the
  // failure instant.
  std::function<void()> watch = [&sim, &rt, &tl, &watch] {
    if (sim.now() > 4_ms && tl.recovery_ms < 0) {
      const auto l = rt.topology().link_between(0, 1);
      if (l && rt.plant().link(*l).lane_count() == 2 && rt.plant().link(*l).ready() &&
          rt.plant().failed_lanes_of_link(*l).empty()) {
        tl.recovery_ms = sim.now().ms();
      }
    }
    if (sim.now() < 12_ms) sim.schedule_weak_after(100_us, watch);
  };
  sim.schedule_weak_after(100_us, watch);

  rt.run_until(15_ms);
  rt.stop();
  rt.run_until();

  tl.failed_flows = rt.network().flows_failed();
  tl.reroute_waits = rt.network().counters().get("net.reroute_waits");
  return tl;
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("EXT7", "§3.2 link health",
                           "the fabric heals a hard lane failure from dark spares");
  telemetry::Table table("Lane failure at t=4ms on a busy 4x4 rack (uniform load)",
                         {"fabric", "failed_flows", "reroute_waits",
                          "full_width_back_ms", "p99_us@3ms", "p99_us@12ms"});
  struct Mode {
    const char* name;
    bool crc;
    bool heal;
  };
  for (const Mode& m : {Mode{"static", false, false}, Mode{"crc-prices", true, false},
                        Mode{"crc-healing", true, true}}) {
    const Timeline tl = run_mode(m.crc, m.heal);
    table.row()
        .cell(m.name)
        .cell(tl.failed_flows)
        .cell(tl.reroute_waits)
        .cell(tl.recovery_ms, 2)
        .cell(tl.p99_us_per_ms.size() > 2 ? tl.p99_us_per_ms[2] : -1.0, 2)
        .cell(!tl.p99_us_per_ms.empty() ? tl.p99_us_per_ms.back() : -1.0, 2);
  }
  table.print();
  std::printf(
      "Shape check: only 'crc-healing' reports a full-width recovery time (~one\n"
      "epoch + provision time after the failure). 'static' dimension-less routing\n"
      "still detours via min-cost but keeps the broken link priced attractive;\n"
      "'crc-prices' prices it out. Flow failures should be zero for both CRC modes.\n");
  return 0;
}
