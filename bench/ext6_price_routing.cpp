// EXT6 — §3.2 price-tag routing under a hotspot.
//
// The CRC "uses per-link price tags, with respect to metrics such as
// latency, congestion, link health etc." We aim a hotspot at one node
// of a 6x6 torus and compare:
//   dimension-order    : the static baseline (no prices at all);
//   min-cost unloaded  : static shortest-latency paths;
//   CRC latency-only   : prices = latency (ablation: no congestion term);
//   CRC balanced       : latency + congestion + health prices.
// Congestion-aware prices spread flows around the saturated links,
// which shows up in the P99 and in goodput.
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using sim::SimTime;

struct Mode {
  const char* name;
  fabric::RoutingPolicy policy;
  bool crc;
  core::PriceWeights weights;
};

rsf::bench::RunMetrics run_mode(const Mode& mode) {
  runtime::RuntimeConfig cfg;
  cfg.shape = runtime::RackShape::kTorus;
  cfg.rack.width = 6;
  cfg.rack.height = 6;
  cfg.rack.routing = mode.policy;
  cfg.enable_crc = mode.crc;
  cfg.crc.epoch = 100_us;
  cfg.crc.weights = mode.weights;
  runtime::FabricRuntime rt(cfg);
  rt.start();

  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 12_us;
  gen_cfg.horizon = 8_ms;
  gen_cfg.sizes = workload::SizeDistribution::heavy_tail(1.3, 4e3, 5e5);
  gen_cfg.seed = 99;
  auto& gen = rt.add_generator(
      workload::TrafficMatrix::hotspot(36, /*hot_node=*/14, /*hot_fraction=*/0.5), gen_cfg);
  gen.start();
  rt.run_until(40_ms);
  rt.stop();
  rt.run_until();
  return rsf::bench::collect(gen, rt.network());
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("EXT6", "§3.2 price-tag routing",
                           "congestion-aware prices beat static routing under hotspots");
  telemetry::Table table(
      "Hotspot (50% of demand -> node 14) on a 6x6 torus, heavy-tailed flows",
      {"routing", "goodput_gbps", "fct_p50_us", "fct_p99_us", "pkt_p99_us", "mean_hops",
       "retransmits"});
  const Mode modes[] = {
      {"dimension-order", fabric::RoutingPolicy::kDimensionOrder, false, {}},
      {"min-cost unloaded", fabric::RoutingPolicy::kMinCost, false, {}},
      {"crc latency-only", fabric::RoutingPolicy::kMinCost, true,
       core::PriceWeights::latency_only()},
      {"crc balanced", fabric::RoutingPolicy::kMinCost, true,
       core::PriceWeights::balanced()},
  };
  for (const Mode& mode : modes) {
    const auto m = run_mode(mode);
    table.row()
        .cell(mode.name)
        .cell(m.goodput_gbps, 3)
        .cell(m.fct_p50_us, 1)
        .cell(m.fct_p99_us, 1)
        .cell(m.pkt_p99_us, 1)
        .cell(m.mean_hops, 2)
        .cell(m.retransmits);
  }
  table.print();
  std::printf("Shape check: 'crc balanced' should post the best P99 (it detours around\n"
              "the hotspot's saturated links at the cost of slightly longer paths);\n"
              "'crc latency-only' ablates the congestion term and behaves like static\n"
              "min-cost routing.\n");
  return 0;
}
