// EXT5 — PLP #2, high-speed bypass.
//
// "High speed bypass — connecting two links at the lowest possible
// physical level." The CRC's latency win comes from packets crossing
// intermediate nodes without touching their switching logic. We sweep
// the number of intermediate nodes k and measure one probe end to end:
// over switched hops, and over a bypass chain built from the same
// cables' spare lanes. The switched line grows ~450 ns per hop; the
// bypass line grows only ~35 ns per hop (media + bypass element).
#include "bench_common.hpp"

#include "core/reconfig.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using phy::LinkId;
using sim::SimTime;

double probe_us(runtime::FabricRuntime& rt, phy::NodeId dst) {
  double out = -1;
  rt.network().send_probe(0, dst, DataSize::bytes(1024), [&](SimTime lat, int, bool ok) {
    if (ok) out = lat.us();
  });
  rt.run_until();
  return out;
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("EXT5", "PLP #2 (high-speed bypass)",
                           "bypass makes end-to-end latency almost flat in path length");
  telemetry::Table table(
      "1024B probe latency across k intermediate nodes (2 m per hop)",
      {"intermediate_nodes", "switched_us", "bypass_us", "saving_us", "saving_per_node_ns"});

  for (int k = 1; k <= 15; k += (k < 4 ? 1 : 2)) {
    const int nodes = k + 2;
    runtime::RuntimeConfig cfg;
    cfg.shape = runtime::RackShape::kChain;
    cfg.nodes = nodes;
    cfg.enable_crc = false;
    runtime::FabricRuntime rt(cfg);
    const auto dst = static_cast<phy::NodeId>(nodes - 1);

    const double switched = probe_us(rt, dst);

    // Build the bypass chain from spare lanes (split each hop link).
    std::vector<LinkId> path;
    for (int i = 0; i + 1 < nodes; ++i) {
      path.push_back(*rt.topology().link_between(static_cast<phy::NodeId>(i),
                                                 static_cast<phy::NodeId>(i + 1)));
    }
    std::vector<LinkId> spares;
    core::split_many(&rt.engine(), path, 1, [&](auto outs) {
      for (auto& o : outs) {
        if (o) spares.push_back(o->spare);
      }
    });
    rt.run_until();
    std::optional<LinkId> circuit;
    core::chain_bypass(&rt.engine(), spares,
                       [&](std::optional<LinkId> l) { circuit = l; });
    rt.run_until();
    if (!circuit) continue;

    const double bypass = probe_us(rt, dst);
    table.row()
        .cell(k)
        .cell(switched, 3)
        .cell(bypass, 3)
        .cell(switched - bypass, 3)
        .cell((switched - bypass) * 1000.0 / k, 1);
  }
  table.print();
  std::printf("Shape check: the per-intermediate-node saving approaches the switch\n"
              "pipeline latency (~450 ns) minus the bypass joint cost (~25 ns); the\n"
              "bypass series stays nearly flat while the switched series climbs.\n");
  return 0;
}
