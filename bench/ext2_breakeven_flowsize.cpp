// EXT2 — the paper's §3.2 optimisation question, answered end to end.
//
// "The problem that arises in all reconfigurable fabrics is finding
// the minimum flow size for which reconfiguration is worth the cost."
//
// Part A: the closed-form break-even size as a function of the
// reconfiguration dead time (the knob real systems differ on most) —
// pure model, no simulation.
// Part B: the CRC flow scheduler faced with real flows on a loaded
// 6-node chain: its estimates, its decision, and the measured
// completion, showing the decision flips at the predicted size.
// Part C ablates the design choice DESIGN.md calls out: estimating
// the packet path with nominal vs measured (utilisation-discounted)
// bandwidth.
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataRate;
using phy::DataSize;
using sim::SimTime;

void part_a() {
  telemetry::Table table(
      "Break-even flow size vs reconfiguration cost (25G dedicated vs 5G available share)",
      {"reconfig_cost_us", "break_even_KB", "break_even_@50%share_KB"});
  for (double cost_us : {1.0, 10.0, 56.0, 100.0, 1000.0, 10000.0}) {
    // A loaded pair of lanes leaves ~5G available; the spare-lane
    // circuit gives a dedicated 25G.
    const auto heavy = core::break_even_size(DataRate::gbps(5), DataRate::gbps(25),
                                             SimTime::microseconds(cost_us));
    const auto light = core::break_even_size(DataRate::gbps(12.5), DataRate::gbps(25),
                                             SimTime::microseconds(cost_us));
    table.row()
        .cell(cost_us, 0)
        .cell(heavy ? heavy->byte_count() / 1e3 : -1.0, 1)
        .cell(light ? light->byte_count() / 1e3 : -1.0, 1);
  }
  table.print();
  std::printf("Shape check: one crossover, threshold linear in the reconfiguration cost\n"
              "and lower when the packet fabric is more congested.\n");
}

/// A 6-node storage chain with competing bulk traffic (the load the
/// scheduler must beat).
runtime::RuntimeConfig chain_config() {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 6;
  cfg.rack.height = 1;
  return cfg;
}

void add_background_load(runtime::FabricRuntime& rt) {
  for (fabric::FlowId i = 0; i < 3; ++i) {
    fabric::FlowSpec bg;
    bg.id = 900 + i;
    bg.src = 0;
    bg.dst = 5;
    bg.size = DataSize::megabytes(60);
    rt.network().start_flow(bg, nullptr);
  }
}

struct Measured {
  core::ScheduleDecision decision;
  double measured_ms = 0;
  bool used_circuit = false;
};

Measured run_flow(DataSize size) {
  runtime::FabricRuntime rt(chain_config());
  core::CircuitScheduler& sched = rt.controller().circuits();
  add_background_load(rt);
  rt.run_until(500_us);

  fabric::FlowSpec spec;
  spec.id = 1;
  spec.src = 0;
  spec.dst = 5;
  spec.size = size;
  Measured out;
  out.decision = sched.decide(spec);
  sched.submit(spec, [&](const fabric::FlowResult& r, bool circuit) {
    out.measured_ms = r.completion_time().ms();
    out.used_circuit = circuit;
  });
  rt.run_until();
  return out;
}

void part_b() {
  telemetry::Table table(
      "CRC scheduler decisions on a loaded 6-node chain (3 competing bulk flows)",
      {"flow_size", "est_packet_ms", "est_circuit_ms", "break_even_MB", "choice",
       "measured_ms"});
  for (double mb : {0.25, 0.5, 1.0, 4.0, 16.0, 64.0}) {
    const Measured m = run_flow(DataSize::megabytes(mb));
    table.row()
        .cell(DataSize::megabytes(mb).to_string())
        .cell(m.decision.est_packet_completion.ms(), 3)
        .cell(m.decision.est_circuit_completion.ms(), 3)
        .cell(m.decision.break_even ? m.decision.break_even->byte_count() / 1e6 : -1.0, 3)
        .cell(m.used_circuit ? "circuit" : "packet")
        .cell(m.measured_ms, 3);
  }
  table.print();
  std::printf("Shape check: the choice flips from packet to circuit once the flow size\n"
              "crosses the printed break-even, and the measured times agree with the\n"
              "chosen estimate's ordering.\n");
}

void part_c() {
  // Ablation: nominal-bandwidth estimation believes the packet fabric
  // is fast and never builds a circuit on a loaded path.
  telemetry::Table table("Ablation — nominal vs measured bandwidth in the decision",
                         {"flow_size", "measured_est_ms(load-aware)", "nominal_est_ms",
                          "load-aware_choice", "nominal_choice"});
  for (double mb : {4.0, 16.0, 64.0}) {
    runtime::FabricRuntime rt(chain_config());
    core::CircuitScheduler& sched = rt.controller().circuits();
    fabric::FlowSpec spec;
    spec.id = 1;
    spec.src = 0;
    spec.dst = 5;
    spec.size = DataSize::megabytes(mb);
    // Nominal = decide before any load exists (utilisation 0).
    const auto nominal = sched.decide(spec);
    add_background_load(rt);
    rt.run_until(500_us);
    const auto aware = sched.decide(spec);
    table.row()
        .cell(DataSize::megabytes(mb).to_string())
        .cell(aware.est_packet_completion.ms(), 3)
        .cell(nominal.est_packet_completion.ms(), 3)
        .cell(aware.use_circuit ? "circuit" : "packet")
        .cell(nominal.use_circuit ? "circuit" : "packet");
  }
  table.print();
  std::printf("Shape check: with nominal bandwidth the scheduler never reconfigures on a\n"
              "loaded fabric; PLP #5 measurements are what make the break-even usable.\n");
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("EXT2", "§3.2 minimum-flow-size question",
                           "reconfigure iff the flow exceeds the break-even size");
  part_a();
  part_b();
  part_c();
  return 0;
}
