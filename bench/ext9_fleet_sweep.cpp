// EXT9 — fleet-scope sweep: circuit reservations vs. packet sharing
// under skew.
//
// The paper's core trade — circuit-style reserved capacity against
// packet-style statistical sharing — replayed at fleet scale: every
// skewed scenario (hot-rack incast, slow spine leg, mixed rack sizes)
// runs twice per sweep point, once as the pure packetized spine and
// once with the FleetController's reservation policy promoting the
// hot rack pair into a spine circuit. The sweep crosses per-link
// loss_prob with the controller's utilisation repricing weight, and
// reports the regime crossover per point: how much the hot pair's
// job completion improves under a reservation, and how much the
// background traffic sharing the residual degrades — both quantified
// in the emitted JSON (--json <path>; bench-smoke uploads it).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "workload/crossrack.hpp"

namespace {

using namespace rsf;
using workload::SkewedFleetScenario;
using workload::SkewedScenarioConfig;
using workload::SkewedScenarioKind;
using workload::SkewedScenarioResult;

const char* kind_name(SkewedScenarioKind k) {
  switch (k) {
    case SkewedScenarioKind::kHotRackIncast:
      return "hot_rack_incast";
    case SkewedScenarioKind::kSlowSpineLeg:
      return "slow_spine_leg";
    case SkewedScenarioKind::kMixedRackSizes:
      return "mixed_rack_sizes";
  }
  return "?";
}

SkewedScenarioResult run_arm(SkewedScenarioKind kind, double loss, double weight,
                             bool reservations, int fleet_workers) {
  SkewedScenarioConfig cfg;
  cfg.kind = kind;
  cfg.loss_prob = loss;
  cfg.utilization_weight = weight;
  cfg.reservations = reservations;
  cfg.workers = fleet_workers;
  SkewedFleetScenario scenario(cfg);
  return scenario.run();
}

struct SweepPoint {
  SkewedScenarioKind kind;
  double loss;
  double weight;
  SkewedScenarioResult packet;    // reservations off
  SkewedScenarioResult reserved;  // reservations on

  [[nodiscard]] double hot_speedup_pct() const {
    const double off = packet.hot.job_completion.us();
    return off > 0 ? (off - reserved.hot.job_completion.us()) / off * 100.0 : 0.0;
  }
  [[nodiscard]] double background_slowdown_pct() const {
    const double off = packet.background.job_completion.us();
    return off > 0 ? (reserved.background.job_completion.us() - off) / off * 100.0 : 0.0;
  }
};

void emit_arm(FILE* f, const char* name, const SkewedScenarioResult& r) {
  std::fprintf(f,
               "      \"%s\": {\"hot_job_us\": %.3f, \"background_job_us\": %.3f, "
               "\"hot_retransmits\": %llu, \"background_retransmits\": %llu, "
               "\"hot_failed\": %llu, \"background_failed\": %llu, "
               "\"promotions\": %llu, \"demotions\": %llu, \"preemptions\": %llu, "
               "\"reserved_bytes\": %llu}",
               name, r.hot.job_completion.us(), r.background.job_completion.us(),
               static_cast<unsigned long long>(r.hot.retransmits),
               static_cast<unsigned long long>(r.background.retransmits),
               static_cast<unsigned long long>(r.hot.failed),
               static_cast<unsigned long long>(r.background.failed),
               static_cast<unsigned long long>(r.promotions),
               static_cast<unsigned long long>(r.demotions),
               static_cast<unsigned long long>(r.preemptions),
               static_cast<unsigned long long>(r.reserved_bytes));
}

void emit_json(const std::vector<SweepPoint>& points, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ext9: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ext9_fleet_sweep\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"loss_prob\": %g, "
                 "\"utilization_weight\": %g,\n",
                 kind_name(p.kind), p.loss, p.weight);
    emit_arm(f, "packet", p.packet);
    std::fprintf(f, ",\n");
    emit_arm(f, "reserved", p.reserved);
    std::fprintf(f, ",\n      \"hot_speedup_pct\": %.2f, \"background_slowdown_pct\": %.2f}%s\n",
                 p.hot_speedup_pct(), p.background_slowdown_pct(),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::string json_path = "bench-ext9_fleet_sweep.json";
  // --workers N: sweep-level parallelism — the 24 scenario arms (12
  // points x packet/reserved) are independent simulations, so a pool
  // of N threads runs them concurrently and the table/JSON are
  // assembled serially afterwards in the fixed sweep order: output is
  // byte-identical for every N. --fleet-workers N: intra-run
  // parallelism — each arm's FleetRuntime drives its racks through
  // the conservative-PDES engine; also byte-identical by construction
  // (the CI determinism gate diffs it against the serial oracle).
  int sweep_workers = 1;
  int fleet_workers = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--workers") == 0) sweep_workers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--fleet-workers") == 0) {
      fleet_workers = std::atoi(argv[i + 1]);
    }
  }
  if (sweep_workers < 1 || fleet_workers < 1) {
    std::fprintf(stderr, "ext9: --workers/--fleet-workers must be >= 1\n");
    return 2;
  }
  bench::print_header(
      "EXT9", "fleet-scope circuit vs. packet regimes (SIGCOMM §2, at fleet scale)",
      "reserving capacity for a persistently hot rack pair improves its job "
      "completion while the shared residual's degradation stays bounded");

  const SkewedScenarioKind kinds[] = {SkewedScenarioKind::kHotRackIncast,
                                      SkewedScenarioKind::kSlowSpineLeg,
                                      SkewedScenarioKind::kMixedRackSizes};
  const double losses[] = {0.0, 0.005};
  const double weights[] = {0.0, 8.0};

  std::vector<SweepPoint> points;
  for (SkewedScenarioKind kind : kinds) {
    for (double loss : losses) {
      for (double weight : weights) {
        SweepPoint p;
        p.kind = kind;
        p.loss = loss;
        p.weight = weight;
        points.push_back(p);
      }
    }
  }

  // Run every arm, possibly on a pool. Results land in slots indexed
  // by (point, arm), so completion order never touches output order.
  struct Arm {
    std::size_t point;
    bool reservations;
  };
  std::vector<Arm> arms;
  arms.reserve(points.size() * 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    arms.push_back({i, false});
    arms.push_back({i, true});
  }
  std::atomic<std::size_t> next{0};
  auto pump = [&] {
    for (;;) {
      const std::size_t a = next.fetch_add(1, std::memory_order_relaxed);
      if (a >= arms.size()) return;
      SweepPoint& p = points[arms[a].point];
      SkewedScenarioResult r =
          run_arm(p.kind, p.loss, p.weight, arms[a].reservations, fleet_workers);
      (arms[a].reservations ? p.reserved : p.packet) = r;
    }
  };
  if (sweep_workers == 1) {
    pump();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(sweep_workers) - 1);
    for (int t = 1; t < sweep_workers; ++t) pool.emplace_back(pump);
    pump();
    for (std::thread& t : pool) t.join();
  }

  telemetry::Table table("ext9 — reservation crossover per sweep point",
                         {"scenario", "loss", "w_util", "hot off (us)", "hot on (us)",
                          "hot speedup %", "bg off (us)", "bg on (us)", "bg slowdown %",
                          "promoted"});
  for (SweepPoint& p : points) {
    char buf[32];
    table.row().cell(kind_name(p.kind));
    std::snprintf(buf, sizeof buf, "%g", p.loss);
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%g", p.weight);
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.packet.hot.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.reserved.hot.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.hot_speedup_pct());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.packet.background.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.reserved.background.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.background_slowdown_pct());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(p.reserved.promotions));
    table.cell(buf);
  }
  table.print();
  emit_json(points, json_path);
  return 0;
}
