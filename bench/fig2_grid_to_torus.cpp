// FIG2 — reproduces Figure 2 of the paper.
//
// "An example of the adaptive rack-scale network operation. Initially,
// the rack is configured using a grid topology of two lanes per link.
// Internal indications are fed to the Closed Ring Control (CRC), that
// issues commands to the Physical Layer Primitives (PLP). These result
// in a torus topology running at one lane per link."
//
// Part A runs the conversion under live traffic and reports the fabric
// before/after: hop counts, latency, logical link widths, power.
// Part B sweeps the control epoch and reports the CRC's reaction time
// (trigger -> torus complete), the control-freshness ablation DESIGN.md
// calls out.
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using sim::SimTime;

struct PhaseMetrics {
  double mean_pkt_us = 0;
  double p99_pkt_us = 0;
  double mean_hops = 0;
  int corner_hops = 0;
  double power_w = 0;
  std::size_t links = 0;
  int max_lanes = 0;
};

PhaseMetrics snapshot_phase(runtime::FabricRuntime& rt, SimTime window) {
  // Run a measurement window of uniform traffic and collect stats.
  workload::GeneratorConfig cfg;
  cfg.mean_interarrival = 30_us;
  cfg.horizon = rt.now() + window;
  cfg.seed = 1234 + static_cast<std::uint64_t>(rt.now().ps());
  cfg.first_flow_id = 1 + static_cast<fabric::FlowId>(rt.now().ps());
  // Small flows: the measurement probes hop-count latency, which is
  // what the conversion buys (bandwidth is reorganised, not added).
  cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(2));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(rt.node_count()), cfg);
  auto& net = rt.network();
  const bench::NetSnapshot before = bench::NetSnapshot::of(net);
  gen.start(rt.now());
  rt.run_until(cfg.horizon + 5_ms);

  PhaseMetrics m;
  const telemetry::Histogram pkt_window = before.packets_since(net);
  m.mean_pkt_us = pkt_window.mean() * 1e-6;
  // Window p99, not cumulative: the torus phase's tail must not be
  // diluted by grid-phase samples still in the histogram.
  m.p99_pkt_us = pkt_window.p99() * 1e-6;
  m.mean_hops = before.hops_since(net).mean();
  const auto& params = rt.rack_params();
  m.corner_hops = rt.router().hop_count(rt.node_at(0, 0),
                                        rt.node_at(params.width - 1, params.height - 1));
  m.power_w = rt.total_power_watts();
  m.links = rt.plant().link_count();
  for (phy::LinkId id : rt.plant().link_ids()) {
    m.max_lanes = std::max(m.max_lanes, rt.plant().link(id).lane_count());
  }
  return m;
}

void part_a() {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 8;
  cfg.rack.height = 8;
  cfg.rack.lanes_per_cable = 2;
  cfg.rack.lanes_per_link = 2;  // "grid topology of two lanes per link"
  runtime::FabricRuntime rt(cfg);
  rt.start();

  const PhaseMetrics before = snapshot_phase(rt, 2_ms);

  // The internal indication: request the move (Part B shows the
  // autonomous trigger) and time its completion.
  const SimTime t0 = rt.now();
  SimTime t_done;
  core::TopologyPlanner::Report report;
  rt.controller().request_grid_to_torus([&](const core::TopologyPlanner::Report& r) {
    report = r;
    t_done = rt.now();
  });
  rt.run_until();

  const PhaseMetrics after = snapshot_phase(rt, 2_ms);
  rt.stop();
  rt.run_until();

  telemetry::Table table("Figure 2 — grid (2 lanes/link) -> torus (1 lane/link), 8x8 rack",
                         {"phase", "mean_pkt_us", "p99_pkt_us", "mean_hops", "corner_hops",
                          "links", "lanes/link", "power_w"});
  table.row()
      .cell("grid 2-lane")
      .cell(before.mean_pkt_us, 2)
      .cell(before.p99_pkt_us, 2)
      .cell(before.mean_hops, 2)
      .cell(before.corner_hops)
      .cell(static_cast<std::uint64_t>(before.links))
      .cell(before.max_lanes)
      .cell(before.power_w, 1);
  table.row()
      .cell("torus 1-lane")
      .cell(after.mean_pkt_us, 2)
      .cell(after.p99_pkt_us, 2)
      .cell(after.mean_hops, 2)
      .cell(after.corner_hops)
      .cell(static_cast<std::uint64_t>(after.links))
      .cell(after.max_lanes)
      .cell(after.power_w, 1);
  table.print();
  std::printf("Conversion: %d rows + %d cols closed, %d failures, %zu wrap links, "
              "actuation time %s\n",
              report.rows_closed, report.cols_closed, report.failures,
              report.wrap_links.size(), (t_done - t0).to_string().c_str());
}

void part_b() {
  telemetry::Table table("Figure 2b — CRC reaction time vs control epoch (autonomous trigger)",
                         {"epoch_us", "ring_circulation_us", "trigger_at_us",
                          "torus_done_us", "reaction_us"});
  for (double epoch_us : {50.0, 100.0, 250.0, 500.0, 1000.0}) {
    runtime::RuntimeConfig cfg;
    cfg.rack.width = 6;
    cfg.rack.height = 6;
    cfg.crc.epoch = sim::SimTime::microseconds(epoch_us);
    cfg.crc.enable_auto_torus = true;
    cfg.crc.torus_util_threshold = 0.25;
    cfg.crc.torus_trigger_epochs = 2;
    runtime::FabricRuntime rt(cfg);
    auto& sim = rt.sim();
    rt.start();

    // Sudden sustained max-distance load from t = 0.
    workload::GeneratorConfig gen_cfg;
    gen_cfg.mean_interarrival = 20_us;
    gen_cfg.horizon = 5_ms;
    gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(64));
    auto& gen = rt.add_generator(workload::TrafficMatrix::opposite(36), gen_cfg);
    gen.start();

    // Watch for the wrap links appearing (weak: observation only).
    SimTime done = SimTime::infinity();
    std::function<void()> poll = [&] {
      if (rt.plant().total_bypass_joints() >= 8 && done == SimTime::infinity()) {
        done = sim.now();
        return;
      }
      if (sim.now() < 10_ms) sim.schedule_weak_after(50_us, poll);
    };
    sim.schedule_weak_after(50_us, poll);
    rt.run_until(10_ms);
    rt.stop();
    rt.run_until();

    const auto ring_us =
        (sim::SimTime::nanoseconds(300) * std::int64_t{36}).us();
    table.row()
        .cell(epoch_us, 0)
        .cell(ring_us, 1)
        .cell(0.0, 0)
        .cell(done == SimTime::infinity() ? -1.0 : done.us(), 1)
        .cell(done == SimTime::infinity() ? -1.0 : done.us(), 1);
  }
  table.print();
  std::printf("Shape check: reaction time grows with the control epoch — fresher\n"
              "telemetry buys faster adaptation, at more control-ring traffic.\n");
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("FIG2", "Figure 2",
                           "CRC + PLP convert a 2-lane grid into a 1-lane torus in place");
  part_a();
  part_b();
  return 0;
}
