// EXT8 — multi-rack shuffle scaling (google-benchmark).
//
// Measures the fleet hot path end-to-end: build an N-rack fleet
// (4x4 grid racks on a spine ring), run a shuffle whose mappers and
// reducers live in *different* racks, and report simulated events per
// wall second plus the job's simulated completion time. Since PR 3 the
// default path is the per-packet spine transport; the store-and-
// forward baseline runs the same shuffle at equal delivered bytes so
// the JSON artifact carries the regression comparison, and a
// controller variant measures the repricing loop's overhead. This is
// the CI bench-smoke anchor for the FleetRuntime / Interconnect /
// FleetController layer, the companion of micro_kernel's single-rack
// numbers.
#include <benchmark/benchmark.h>

#include "runtime/fleet.hpp"
#include "sim/log.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;

runtime::FleetConfig fleet_config(int racks, runtime::SpineTransport transport) {
  runtime::FleetConfig cfg;
  cfg.transport = transport;
  for (int i = 0; i < racks; ++i) {
    runtime::RackSpec rack;
    rack.config.shape = runtime::RackShape::kGrid;
    rack.config.rack.width = 4;
    rack.config.rack.height = 4;
    rack.config.enable_crc = false;  // measure transport, not control
    cfg.racks.push_back(rack);
  }
  // Spine ring: rack i <-> rack (i+1) % racks.
  for (int i = 0; i < racks; ++i) {
    runtime::SpineSpec s;
    s.rack_a = static_cast<std::uint32_t>(i);
    s.rack_b = static_cast<std::uint32_t>((i + 1) % racks);
    s.rate = phy::DataRate::gbps(400);
    s.latency = 2_us;
    cfg.spine.push_back(s);
    if (racks == 2) break;  // avoid a duplicate 0<->1 pair
  }
  return cfg;
}

/// One shuffle (mappers on rack 0, reducers spread over the other
/// racks: every flow crosses the spine) at equal delivered bytes for
/// every transport variant.
void run_shuffle(benchmark::State& state, runtime::FleetConfig cfg, int racks) {
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  std::uint64_t events = 0;
  double job_us = 0;
  for (auto _ : state) {
    runtime::FleetRuntime fleet(cfg);
    workload::CrossRackShuffleConfig shuffle;
    for (int x = 0; x < 4; ++x) shuffle.mappers.push_back(fleet.at(0, x, 0));
    for (int r = 1; r < racks; ++r) {
      for (int x = 0; x < 4; ++x) {
        shuffle.reducers.push_back(fleet.at(static_cast<std::uint32_t>(r), x, 3));
      }
    }
    shuffle.bytes_per_pair = phy::DataSize::kilobytes(64);
    auto& job = fleet.add_shuffle(shuffle);
    fleet.start();
    job.run(nullptr);
    fleet.run_until();
    fleet.stop();
    if (!job.finished() || job.result().failed > 0) {
      state.SkipWithError("shuffle did not complete");
      return;
    }
    events += fleet.sim().executed();
    job_us = job.result().job_completion.us();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["job_us"] = job_us;
}

void BM_MultiRackShuffle(benchmark::State& state) {
  const int racks = static_cast<int>(state.range(0));
  run_shuffle(state, fleet_config(racks, runtime::SpineTransport::kPacketized), racks);
}

void BM_MultiRackShuffleBulk(benchmark::State& state) {
  // The PR 2 store-and-forward baseline at equal delivered bytes.
  const int racks = static_cast<int>(state.range(0));
  run_shuffle(state, fleet_config(racks, runtime::SpineTransport::kStoreAndForward),
              racks);
}

void BM_MultiRackShuffleControlled(benchmark::State& state) {
  // Packetized transport plus the repricing loop: the controller's
  // epoch ticks and route re-plans ride on the same clock.
  const int racks = static_cast<int>(state.range(0));
  runtime::FleetConfig cfg = fleet_config(racks, runtime::SpineTransport::kPacketized);
  cfg.enable_controller = true;
  cfg.controller.epoch = 50_us;
  run_shuffle(state, std::move(cfg), racks);
}

void BM_CrossRackFlow(benchmark::State& state) {
  // One 1 MB flow across the diameter of a 3-rack line: the per-packet
  // orchestration overhead (legs + spine FIFO), amortised.
  sim::LogConfig::set_level(sim::LogLevel::kOff);
  runtime::FleetConfig cfg = fleet_config(3, runtime::SpineTransport::kPacketized);
  cfg.spine.pop_back();  // break the ring: line 0 - 1 - 2
  std::uint64_t events = 0;
  for (auto _ : state) {
    runtime::FleetRuntime fleet(cfg);
    runtime::FleetFlowSpec spec;
    spec.src = fleet.at(0, 0, 0);
    spec.dst = fleet.at(2, 3, 3);
    spec.size = phy::DataSize::megabytes(1);
    bool ok = false;
    fleet.start_flow(spec, [&](const runtime::FleetFlowResult& r) { ok = !r.failed; });
    fleet.run_until();
    if (!ok) {
      state.SkipWithError("cross-rack flow failed");
      return;
    }
    events += fleet.sim().executed();
  }
  state.counters["events/s"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_MultiRackShuffle)->Unit(benchmark::kMillisecond)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_MultiRackShuffleBulk)->Unit(benchmark::kMillisecond)->Arg(2)->Arg(4);
BENCHMARK(BM_MultiRackShuffleControlled)->Unit(benchmark::kMillisecond)->Arg(4);
BENCHMARK(BM_CrossRackFlow)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
