// MICRO — google-benchmark microbenchmarks of the hot substrate paths.
//
// Not a paper artefact: these guard the simulator's own performance so
// the experiment benches stay fast enough to sweep (a rack-scale run
// pushes millions of events through these paths).
#include <benchmark/benchmark.h>

#include "phy/fec.hpp"
#include "runtime/runtime.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/histogram.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim::SimTime::nanoseconds(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run_until());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_SimulatorSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::function<void()> tick = [&] {
      if (sim.now() < 10_us) sim.schedule_after(10_ns, tick);
    };
    sim.schedule_at(sim::SimTime::zero(), tick);
    benchmark::DoNotOptimize(sim.run_until());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorSelfRescheduling);

void BM_RandomExponential(benchmark::State& state) {
  sim::RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(100.0));
  }
}
BENCHMARK(BM_RandomExponential);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::Histogram h;
  sim::RandomStream rng(2);
  for (auto _ : state) {
    h.record(rng.uniform(1.0, 1e9));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_FecFrameLoss(benchmark::State& state) {
  const auto spec = phy::FecSpec::of(phy::FecScheme::kRsKp4);
  double ber = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.frame_loss_prob(ber, phy::DataSize::bytes(1500)));
    ber = ber < 1e-4 ? ber * 1.01 : 1e-6;
  }
}
BENCHMARK(BM_FecFrameLoss);

void BM_RouterDijkstra(benchmark::State& state) {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = static_cast<int>(state.range(0));
  cfg.rack.height = static_cast<int>(state.range(0));
  cfg.enable_crc = false;
  runtime::FabricRuntime rt(cfg);
  phy::NodeId dst = 0;
  for (auto _ : state) {
    rt.router().bump_prices();  // force recompute
    benchmark::DoNotOptimize(
        rt.router().next_hop(static_cast<phy::NodeId>(rt.node_count() - 1), dst));
    dst = (dst + 1) % rt.node_count();
  }
}
BENCHMARK(BM_RouterDijkstra)->Arg(4)->Arg(8)->Arg(16);

void BM_PacketTransportOneFlow(benchmark::State& state) {
  // The end-to-end hot path: one 256 KB flow corner to corner on a 4x4
  // grid. items/s is simulator events per second — the figure the
  // dense-id refactor targets.
  std::uint64_t events = 0;
  for (auto _ : state) {
    runtime::RuntimeConfig cfg;
    cfg.rack.width = 4;
    cfg.rack.height = 4;
    cfg.enable_crc = false;
    runtime::FabricRuntime rt(cfg);
    fabric::FlowSpec spec;
    spec.id = 1;
    spec.src = 0;
    spec.dst = 15;
    spec.size = phy::DataSize::kilobytes(256);
    rt.network().start_flow(spec, nullptr);
    rt.run_until();
    benchmark::DoNotOptimize(rt.network().flows_completed());
    events += rt.sim().executed();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_PacketTransportOneFlow);

}  // namespace

BENCHMARK_MAIN();
