// MICRO — google-benchmark microbenchmarks of the hot substrate paths.
//
// Not a paper artefact: these guard the simulator's own performance so
// the experiment benches stay fast enough to sweep (a rack-scale run
// pushes millions of events through these paths).
#include <benchmark/benchmark.h>

#include "fabric/builders.hpp"
#include "phy/fec.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/histogram.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(sim::SimTime::nanoseconds(i), [] {});
    }
    benchmark::DoNotOptimize(sim.run_until());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_SimulatorSelfRescheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::function<void()> tick = [&] {
      if (sim.now() < 10_us) sim.schedule_after(10_ns, tick);
    };
    sim.schedule_at(sim::SimTime::zero(), tick);
    benchmark::DoNotOptimize(sim.run_until());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorSelfRescheduling);

void BM_RandomExponential(benchmark::State& state) {
  sim::RandomStream rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(100.0));
  }
}
BENCHMARK(BM_RandomExponential);

void BM_HistogramRecord(benchmark::State& state) {
  telemetry::Histogram h;
  sim::RandomStream rng(2);
  for (auto _ : state) {
    h.record(rng.uniform(1.0, 1e9));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_FecFrameLoss(benchmark::State& state) {
  const auto spec = phy::FecSpec::of(phy::FecScheme::kRsKp4);
  double ber = 1e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spec.frame_loss_prob(ber, phy::DataSize::bytes(1500)));
    ber = ber < 1e-4 ? ber * 1.01 : 1e-6;
  }
}
BENCHMARK(BM_FecFrameLoss);

void BM_RouterDijkstra(benchmark::State& state) {
  sim::Simulator sim;
  fabric::RackParams p;
  p.width = static_cast<int>(state.range(0));
  p.height = static_cast<int>(state.range(0));
  fabric::Rack rack = fabric::build_grid(&sim, p);
  phy::NodeId dst = 0;
  for (auto _ : state) {
    rack.router->bump_prices();  // force recompute
    benchmark::DoNotOptimize(rack.router->next_hop(
        static_cast<phy::NodeId>(rack.topology->node_count() - 1), dst));
    dst = (dst + 1) % rack.topology->node_count();
  }
}
BENCHMARK(BM_RouterDijkstra)->Arg(4)->Arg(8)->Arg(16);

void BM_PacketTransportOneFlow(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    fabric::RackParams p;
    p.width = 4;
    p.height = 4;
    fabric::Rack rack = fabric::build_grid(&sim, p);
    fabric::FlowSpec spec;
    spec.id = 1;
    spec.src = 0;
    spec.dst = 15;
    spec.size = phy::DataSize::kilobytes(256);
    rack.network->start_flow(spec, nullptr);
    sim.run_until();
    benchmark::DoNotOptimize(rack.network->flows_completed());
  }
}
BENCHMARK(BM_PacketTransportOneFlow);

}  // namespace

BENCHMARK_MAIN();
