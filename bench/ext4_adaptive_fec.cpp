// EXT4 — PLP #4, adaptive forward error correction.
//
// The paper lists "adaptive forward error correction" as a Physical
// Layer Primitive and per-lane BER among the statistics the CRC prices
// links with. We subject a rack to a BER ramp (healthy 1e-12 up to a
// failing 1e-4) and compare static FEC choices against the CRC's
// adaptive policy on three axes: delivered goodput, retransmissions,
// and the latency overhead paid when the channel was still clean.
#include "bench_common.hpp"

#include "phy/ber_profile.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using phy::FecScheme;
using sim::SimTime;

struct PolicyResult {
  double goodput_gbps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t corrupted = 0;
  double clean_pkt_us = 0;  // packet latency while the channel is clean
  std::string final_modes;
};

PolicyResult run_policy(bool adaptive, FecScheme static_scheme) {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 3;
  cfg.rack.height = 3;
  cfg.rack.fec = static_scheme;
  cfg.crc.epoch = 200_us;
  cfg.crc.enable_adaptive_fec = adaptive;
  runtime::FabricRuntime rt(cfg);
  auto& sim = rt.sim();

  std::vector<std::unique_ptr<phy::BerDriver>> drivers;
  for (std::size_t c = 0; c < rt.plant().cable_count(); ++c) {
    drivers.push_back(std::make_unique<phy::BerDriver>(
        &sim, &rt.plant(), static_cast<phy::CableId>(c),
        phy::ramp_ber(1e-12, 1e-4, 2_ms, 10_ms), 100_us));
    drivers.back()->start();
  }

  rt.start();

  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 100_us;
  gen_cfg.horizon = 15_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(64));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(9), gen_cfg);
  gen.start();

  // Sample clean-channel latency before the ramp starts.
  PolicyResult r;
  rt.run_until(2_ms);
  r.clean_pkt_us = rt.network().packet_latency().mean() * 1e-6;
  rt.run_until(40_ms);
  rt.stop();
  for (auto& d : drivers) d->stop();
  rt.run_until();

  r.goodput_gbps = gen.goodput_gbps();
  for (const auto& res : gen.results()) r.retransmits += res.retransmits;
  r.corrupted = rt.network().counters().get("net.frames_corrupted");
  std::map<std::string, int> modes;
  for (phy::LinkId id : rt.plant().link_ids()) {
    ++modes[std::string(phy::to_string(rt.plant().link(id).fec().scheme))];
  }
  for (const auto& [name, count] : modes) {
    if (!r.final_modes.empty()) r.final_modes += ", ";
    r.final_modes += name + "x" + std::to_string(count);
  }
  return r;
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("EXT4", "PLP #4 (adaptive FEC)",
                           "adaptive FEC tracks the best static mode at every BER");
  telemetry::Table table(
      "BER ramp 1e-12 -> 1e-4 over 8 ms, 3x3 rack, uniform 64KB flows",
      {"policy", "goodput_gbps", "retransmits", "frames_corrupted", "clean_pkt_us",
       "final_fec_modes"});
  struct Case {
    const char* name;
    bool adaptive;
    FecScheme scheme;
  };
  for (const Case& c : {Case{"static none", false, FecScheme::kNone},
                        Case{"static fire-code", false, FecScheme::kFireCode},
                        Case{"static rs-kr4", false, FecScheme::kRsKr4},
                        Case{"static rs-kp4", false, FecScheme::kRsKp4},
                        Case{"adaptive (CRC)", true, FecScheme::kNone}}) {
    const PolicyResult r = run_policy(c.adaptive, c.scheme);
    table.row()
        .cell(c.name)
        .cell(r.goodput_gbps, 3)
        .cell(r.retransmits)
        .cell(r.corrupted)
        .cell(r.clean_pkt_us, 3)
        .cell(r.final_modes);
  }
  table.print();
  std::printf(
      "Shape check: 'none' melts down at high BER (retransmit storm); 'rs-kp4' is\n"
      "clean but pays overhead+latency from the start (highest clean_pkt_us);\n"
      "adaptive starts light (clean latency ~ none) and ends at rs-kp4 with few\n"
      "retransmissions — tracking the best static mode at each point of the ramp.\n");
  return 0;
}
