// EXT11 — the three-way transport crossover: fraction carves vs.
// TDMA slot schedules vs. pure packet sharing.
//
// PR 9's slotted transport gives the spine a third regime between the
// circuit (a fraction carved out of a link for one pair) and the
// packet FIFO (statistical sharing): periodic slot ownership booked
// per link, ridden collision-free at full link rate, self-expiring on
// inactivity and split across parallel legs by the controller's
// schedule policy. This sweep runs the slotted scenario family's
// three arms (sustained skew, bursty churn whose gaps defeat the
// carve's hysteresis but not the slot timeout, and a flapping hot
// leg) under all three regimes and quantifies the crossover per
// (arm, loss) point: hot-pair speedup and background slowdown of each
// managed regime against the packet baseline. The emitted JSON
// (--json <path>; bench-smoke schema-checks and uploads it) is the
// acceptance artifact: in at least one skewed arm the slotted regime
// must beat the carve on background slowdown at greater-or-equal hot
// speedup.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "workload/slotted.hpp"

namespace {

using namespace rsf;
using workload::SlottedArm;
using workload::SlottedFleetScenario;
using workload::SlottedRegime;
using workload::SlottedScenarioConfig;
using workload::SlottedScenarioResult;

const char* arm_name(SlottedArm a) {
  switch (a) {
    case SlottedArm::kSkew:
      return "skew";
    case SlottedArm::kChurn:
      return "churn";
    case SlottedArm::kFlap:
      return "flap";
  }
  return "?";
}

const char* regime_name(SlottedRegime r) {
  switch (r) {
    case SlottedRegime::kPacket:
      return "packet";
    case SlottedRegime::kCarve:
      return "carve";
    case SlottedRegime::kSlotted:
      return "slotted";
  }
  return "?";
}

SlottedScenarioResult run_cell(SlottedArm arm, SlottedRegime regime, double loss,
                               int fleet_workers) {
  SlottedScenarioConfig cfg;
  cfg.arm = arm;
  cfg.regime = regime;
  cfg.loss_prob = loss;
  cfg.workers = fleet_workers;
  SlottedFleetScenario scenario(cfg);
  return scenario.run();
}

struct SweepPoint {
  SlottedArm arm;
  double loss;
  SlottedScenarioResult packet;
  SlottedScenarioResult carve;
  SlottedScenarioResult slotted;

  [[nodiscard]] double hot_speedup_pct(const SlottedScenarioResult& r) const {
    const double off = packet.hot.job_completion.us();
    return off > 0 ? (off - r.hot.job_completion.us()) / off * 100.0 : 0.0;
  }
  [[nodiscard]] double background_slowdown_pct(const SlottedScenarioResult& r) const {
    const double off = packet.background.job_completion.us();
    return off > 0 ? (r.background.job_completion.us() - off) / off * 100.0 : 0.0;
  }
};

void emit_regime(FILE* f, const char* name, const SlottedScenarioResult& r) {
  std::fprintf(f,
               "      \"%s\": {\"hot_job_us\": %.3f, \"background_job_us\": %.3f, "
               "\"hot_retransmits\": %llu, \"background_retransmits\": %llu, "
               "\"hot_failed\": %llu, \"background_failed\": %llu, "
               "\"promotions\": %llu, \"demotions\": %llu, "
               "\"schedule_splits\": %llu, \"slot_reservations\": %llu, "
               "\"slot_expirations\": %llu, \"slot_preemptions\": %llu, "
               "\"slot_refusals\": %llu, \"slotted_bytes\": %llu, "
               "\"reserved_bytes\": %llu, \"reservation_preemptions\": %llu}",
               name, r.hot.job_completion.us(), r.background.job_completion.us(),
               static_cast<unsigned long long>(r.hot.retransmits),
               static_cast<unsigned long long>(r.background.retransmits),
               static_cast<unsigned long long>(r.hot.failed),
               static_cast<unsigned long long>(r.background.failed),
               static_cast<unsigned long long>(r.promotions),
               static_cast<unsigned long long>(r.demotions),
               static_cast<unsigned long long>(r.schedule_splits),
               static_cast<unsigned long long>(r.slot_reservations),
               static_cast<unsigned long long>(r.slot_expirations),
               static_cast<unsigned long long>(r.slot_preemptions),
               static_cast<unsigned long long>(r.slot_refusals),
               static_cast<unsigned long long>(r.slotted_bytes),
               static_cast<unsigned long long>(r.reserved_bytes),
               static_cast<unsigned long long>(r.reservation_preemptions));
}

void emit_json(const std::vector<SweepPoint>& points, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ext11: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ext11_slotted_sweep\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(f, "    {\"arm\": \"%s\", \"loss_prob\": %g,\n", arm_name(p.arm),
                 p.loss);
    emit_regime(f, "packet", p.packet);
    std::fprintf(f, ",\n");
    emit_regime(f, "carve", p.carve);
    std::fprintf(f, ",\n");
    emit_regime(f, "slotted", p.slotted);
    std::fprintf(f,
                 ",\n      \"carve_hot_speedup_pct\": %.2f, "
                 "\"carve_background_slowdown_pct\": %.2f, "
                 "\"slotted_hot_speedup_pct\": %.2f, "
                 "\"slotted_background_slowdown_pct\": %.2f}%s\n",
                 p.hot_speedup_pct(p.carve), p.background_slowdown_pct(p.carve),
                 p.hot_speedup_pct(p.slotted), p.background_slowdown_pct(p.slotted),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::string json_path = "bench-ext11_slotted_sweep.json";
  // --workers N: sweep-level parallelism — the 18 scenario cells (6
  // points x packet/carve/slotted) are independent simulations, so a
  // pool of N threads runs them concurrently and the table/JSON are
  // assembled serially afterwards in the fixed sweep order: output is
  // byte-identical for every N. --fleet-workers N: intra-run
  // parallelism — each cell's FleetRuntime drives its racks through
  // the conservative-PDES engine; also byte-identical by construction
  // (the CI determinism gate diffs it against the serial oracle).
  int sweep_workers = 1;
  int fleet_workers = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--workers") == 0) sweep_workers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--fleet-workers") == 0) {
      fleet_workers = std::atoi(argv[i + 1]);
    }
  }
  if (sweep_workers < 1 || fleet_workers < 1) {
    std::fprintf(stderr, "ext11: --workers/--fleet-workers must be >= 1\n");
    return 2;
  }
  bench::print_header(
      "EXT11", "carve vs. slotted vs. packet transport regimes (SIGCOMM §2, TDMA arm)",
      "periodic slot schedules match the carve's hot-pair speedup while their "
      "self-expiry and multipath split keep the background's slowdown smaller");

  const SlottedArm arms_axis[] = {SlottedArm::kSkew, SlottedArm::kChurn,
                                  SlottedArm::kFlap};
  const double losses[] = {0.0, 0.005};

  std::vector<SweepPoint> points;
  for (SlottedArm arm : arms_axis) {
    for (double loss : losses) {
      SweepPoint p;
      p.arm = arm;
      p.loss = loss;
      points.push_back(p);
    }
  }

  // Run every cell, possibly on a pool. Results land in slots indexed
  // by (point, regime), so completion order never touches output
  // order.
  struct Cell {
    std::size_t point;
    SlottedRegime regime;
  };
  std::vector<Cell> cells;
  cells.reserve(points.size() * 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    cells.push_back({i, SlottedRegime::kPacket});
    cells.push_back({i, SlottedRegime::kCarve});
    cells.push_back({i, SlottedRegime::kSlotted});
  }
  std::atomic<std::size_t> next{0};
  auto pump = [&] {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= cells.size()) return;
      SweepPoint& p = points[cells[c].point];
      SlottedScenarioResult r = run_cell(p.arm, cells[c].regime, p.loss, fleet_workers);
      switch (cells[c].regime) {
        case SlottedRegime::kPacket:
          p.packet = r;
          break;
        case SlottedRegime::kCarve:
          p.carve = r;
          break;
        case SlottedRegime::kSlotted:
          p.slotted = r;
          break;
      }
    }
  };
  if (sweep_workers == 1) {
    pump();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(sweep_workers) - 1);
    for (int t = 1; t < sweep_workers; ++t) pool.emplace_back(pump);
    pump();
    for (std::thread& t : pool) t.join();
  }

  telemetry::Table table("ext11 — transport-regime crossover per sweep point",
                         {"arm", "loss", "hot pkt (us)", "hot carve (us)",
                          "hot slot (us)", "carve up %", "slot up %", "bg pkt (us)",
                          "carve bg down %", "slot bg down %", "expiries", "splits"});
  for (SweepPoint& p : points) {
    char buf[32];
    table.row().cell(arm_name(p.arm));
    std::snprintf(buf, sizeof buf, "%g", p.loss);
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.packet.hot.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.carve.hot.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.slotted.hot.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.hot_speedup_pct(p.carve));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.hot_speedup_pct(p.slotted));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.packet.background.job_completion.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.background_slowdown_pct(p.carve));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", p.background_slowdown_pct(p.slotted));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(p.slotted.slot_expirations));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(p.slotted.schedule_splits));
    table.cell(buf);
  }
  table.print();
  emit_json(points, json_path);
  return 0;
}
