// Shared helpers for the experiment benches. Each bench binary
// regenerates one figure/table of the paper (see DESIGN.md §4): it
// builds a rack through the FabricRuntime facade, drives a workload,
// and prints the series as a table.
#pragma once

#include <cstdio>
#include <string>

#include "runtime/runtime.hpp"
#include "sim/log.hpp"
#include "telemetry/table.hpp"

namespace rsf::bench {

/// Benches run quiet: component logs off, results via tables only.
inline void quiet_logs() { rsf::sim::LogConfig::set_level(rsf::sim::LogLevel::kOff); }

inline void print_header(const char* id, const char* paper_artifact, const char* claim) {
  std::printf("\n################################################################\n");
  std::printf("# %s — reproduces %s\n", id, paper_artifact);
  std::printf("# Paper claim: %s\n", claim);
  std::printf("################################################################\n");
}

/// Aggregate traffic metrics over a finished generator run.
struct RunMetrics {
  double goodput_gbps = 0;
  double fct_p50_us = 0;
  double fct_p99_us = 0;
  double pkt_p50_us = 0;
  double pkt_p99_us = 0;
  double mean_hops = 0;
  std::uint64_t flows = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t failed = 0;
};

inline RunMetrics collect(const workload::FlowGenerator& gen, const fabric::Network& net) {
  RunMetrics m;
  m.goodput_gbps = gen.goodput_gbps();
  const auto fct = gen.completion_histogram();
  m.fct_p50_us = fct.p50() * 1e-6;  // ps -> us
  m.fct_p99_us = fct.p99() * 1e-6;
  m.pkt_p50_us = net.packet_latency().p50() * 1e-6;
  m.pkt_p99_us = net.packet_latency().p99() * 1e-6;
  m.mean_hops = net.hop_counts().mean();
  m.flows = gen.flows_generated();
  m.failed = net.flows_failed();
  for (const auto& r : gen.results()) m.retransmits += r.retransmits;
  return m;
}

/// Snapshot of a network's cumulative histograms at a phase boundary.
/// Take one before a measurement window, then diff with `since()` for
/// the window's own distribution — no mean*count arithmetic in benches.
struct NetSnapshot {
  telemetry::Histogram packet_latency;
  telemetry::Histogram hop_counts;

  [[nodiscard]] static NetSnapshot of(const fabric::Network& net) {
    return {net.packet_latency().snapshot(), net.hop_counts().snapshot()};
  }

  /// Distribution of packets recorded since this snapshot was taken.
  [[nodiscard]] telemetry::Histogram packets_since(const fabric::Network& net) const {
    return net.packet_latency().since(packet_latency);
  }
  [[nodiscard]] telemetry::Histogram hops_since(const fabric::Network& net) const {
    return net.hop_counts().since(hop_counts);
  }
};

}  // namespace rsf::bench
