// EXT10 — fleet-scale resilience sweep: correlated failures under the
// chaos harness.
//
// Every arm drives the fixed four-rack chaos fleet (two shared-risk
// trenches plus a bypass, hot incast + background traffic, the
// reservation controller on) through one failure story — a trench
// cut, a hysteresis-defeating flap storm, a rack-wide brownout, a
// mid-epoch controller kill with a cold or checkpointed restart, the
// combined acceptance scenario, and a seeded-random timeline — and
// reports the degraded-mode SLOs next to the no-chaos baseline:
// flows failed %, p99 job time degradation, and how many epochs a
// restarted controller needed to re-earn the hot pair's reservation.
// Each run carries the chaos invariant verifier (bounded, conserving,
// leak-free); the JSON artifact (--json <path>; bench-smoke
// schema-validates and uploads it) reports the verdicts per arm, and
// the CI determinism gate byte-diffs the whole output at
// --fleet-workers 1 vs 4.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "workload/chaos.hpp"

namespace {

using namespace rsf;
using rsf::sim::SimTime;
using workload::ChaosAction;
using workload::ChaosScenario;
using workload::ChaosScenarioConfig;
using workload::ChaosScenarioResult;

struct Arm {
  const char* name;
  ChaosScenarioConfig cfg;
  ChaosScenarioResult result;
};

ChaosScenarioConfig arm_config(const std::string& name, int fleet_workers) {
  ChaosScenarioConfig cfg;
  cfg.workers = fleet_workers;
  auto us = [](int t) { return SimTime::microseconds(t); };
  if (name == "baseline") {
    // No chaos: the SLO reference every degradation is judged against.
  } else if (name == "baseline_long") {
    // The restart arms run 256 kB flows (the hot pair must outlive the
    // relearn window); their degradation is judged against this
    // matched long-flow baseline, not the 96 kB one.
    cfg.hot_bytes = phy::DataSize::kilobytes(256);
  } else if (name == "srlg_cut") {
    cfg.timeline.push_back({us(60), ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({us(200), ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
  } else if (name == "srlg_flap") {
    // Cuts riding the controller's 20 us epoch boundaries: promotion
    // decisions race the flap, hysteresis is defeated on purpose.
    for (const int t : {40, 80, 120}) {
      cfg.timeline.push_back({us(t), ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
      cfg.timeline.push_back(
          {us(t + 10), ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
    }
  } else if (name == "brownout") {
    cfg.timeline.push_back({us(80), ChaosAction::kBrownoutRack, 1});
    cfg.timeline.push_back({us(400), ChaosAction::kRestoreRack, 1});
  } else if (name == "restart_cold" || name == "restart_ckpt") {
    const bool ckpt = name == "restart_ckpt";
    // Long-lived flows so the hot pair still offers demand while the
    // restarted controller rebuilds its promote streak.
    cfg.hot_bytes = phy::DataSize::kilobytes(256);
    cfg.checkpoint_every = ckpt ? us(60) : SimTime::zero();
    cfg.timeline.push_back({us(110), ChaosAction::kKillController, 0});
    cfg.timeline.push_back({us(130), ChaosAction::kRestartController, 0, ckpt});
  } else if (name == "combined") {
    // The acceptance scenario: cut + mid-epoch kill + checkpointed
    // restart + repair + flap tail, all in one run.
    cfg.checkpoint_every = us(60);
    cfg.timeline.push_back({us(100), ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({us(110), ChaosAction::kKillController, 0});
    cfg.timeline.push_back({us(130), ChaosAction::kRestartController, 0, true});
    cfg.timeline.push_back({us(160), ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({us(190), ChaosAction::kCutGroup, ChaosScenario::kTrenchA});
    cfg.timeline.push_back({us(202), ChaosAction::kRepairGroup, ChaosScenario::kTrenchA});
  } else if (name == "random") {
    cfg.seed = 11;
    cfg.loss_prob = 0.01;
    cfg.random.enable = true;
    cfg.random.cuts = 2;
    cfg.random.flap_cycles = 2;
  }
  return cfg;
}

double p99_degradation_pct(const ChaosScenarioResult& r, const ChaosScenarioResult& base) {
  const double b = base.flow_p99.us();
  if (b <= 0 || r.flows_delivered == 0) return 0.0;
  return (r.flow_p99.us() - b) / b * 100.0;
}

/// The no-chaos arm whose flow size matches this arm's — degradation
/// is only meaningful against a like-for-like baseline.
const ChaosScenarioResult& matched_baseline(const std::vector<Arm>& arms, const Arm& a) {
  for (const Arm& b : arms) {
    const bool no_chaos = b.cfg.timeline.empty() && !b.cfg.random.enable;
    if (no_chaos && b.cfg.hot_bytes == a.cfg.hot_bytes) return b.result;
  }
  return arms.front().result;
}

void emit_json(const std::vector<Arm>& arms, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "ext10: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ext10_chaos_sweep\",\n  \"arms\": [\n");
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const Arm& a = arms[i];
    const ChaosScenarioResult& r = a.result;
    std::fprintf(
        f,
        "    {\"arm\": \"%s\",\n"
        "      \"flows_offered\": %llu, \"flows_delivered\": %llu, "
        "\"flows_failed\": %llu, \"flows_inflight_at_cutoff\": %llu,\n"
        "      \"flows_failed_pct\": %.2f, \"p99_us\": %.3f, "
        "\"p99_degradation_pct\": %.2f, \"hot_job_us\": %.3f, "
        "\"background_job_us\": %.3f,\n"
        "      \"conservation_ok\": %s, \"completed_before_horizon\": %s, "
        "\"slots_at_baseline\": %s,\n"
        "      \"reservation_relearned\": %s, \"relearn_epochs\": %d, "
        "\"controller_restarts\": %llu,\n"
        "      \"srlg_cuts\": %llu, \"preemptions\": %llu, \"reroutes\": %llu, "
        "\"retransmits\": %llu, \"promotions\": %llu, \"demotions\": %llu}%s\n",
        a.name, static_cast<unsigned long long>(r.flows_offered),
        static_cast<unsigned long long>(r.flows_delivered),
        static_cast<unsigned long long>(r.flows_failed),
        static_cast<unsigned long long>(r.flows_inflight_at_cutoff),
        r.flows_failed_pct, r.flow_p99.us(),
        p99_degradation_pct(r, matched_baseline(arms, a)),
        r.hot_job.us(), r.background_job.us(), r.conservation_ok ? "true" : "false",
        r.completed_before_horizon ? "true" : "false",
        r.slots_at_baseline ? "true" : "false",
        r.reservation_relearned ? "true" : "false", r.relearn_epochs,
        static_cast<unsigned long long>(r.controller_restarts),
        static_cast<unsigned long long>(r.srlg_cuts),
        static_cast<unsigned long long>(r.preemptions),
        static_cast<unsigned long long>(r.reroutes),
        static_cast<unsigned long long>(r.retransmits),
        static_cast<unsigned long long>(r.promotions),
        static_cast<unsigned long long>(r.demotions),
        i + 1 < arms.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bench::quiet_logs();
  std::string json_path = "bench-ext10_chaos_sweep.json";
  // --workers N: arm-level parallelism (independent simulations on a
  // pool; output assembled in fixed arm order, so it is byte-identical
  // for every N). --fleet-workers N: each arm's FleetRuntime drives
  // its racks through the conservative-PDES engine — byte-identical
  // to the serial oracle by construction, and the CI determinism gate
  // diffs exactly that.
  int sweep_workers = 1;
  int fleet_workers = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--workers") == 0) sweep_workers = std::atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--fleet-workers") == 0) {
      fleet_workers = std::atoi(argv[i + 1]);
    }
  }
  if (sweep_workers < 1 || fleet_workers < 1) {
    std::fprintf(stderr, "ext10: --workers/--fleet-workers must be >= 1\n");
    return 2;
  }
  bench::print_header(
      "EXT10", "correlated-failure chaos sweep (degraded-mode SLOs)",
      "under trench cuts, flap storms, brownouts and controller restarts the "
      "fleet degrades predictably: conservation holds, failed flows stay "
      "explainable, and a restarted controller re-earns its reservation");

  std::vector<Arm> arms;
  for (const char* name :
       {"baseline", "baseline_long", "srlg_cut", "srlg_flap", "brownout",
        "restart_cold", "restart_ckpt", "combined", "random"}) {
    arms.push_back(Arm{name, arm_config(name, fleet_workers), {}});
  }

  std::atomic<std::size_t> next{0};
  auto pump = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= arms.size()) return;
      ChaosScenario scenario(arms[i].cfg);
      arms[i].result = scenario.run();
    }
  };
  if (sweep_workers == 1) {
    pump();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(sweep_workers) - 1);
    for (int t = 1; t < sweep_workers; ++t) pool.emplace_back(pump);
    pump();
    for (std::thread& t : pool) t.join();
  }

  telemetry::Table table(
      "ext10 — degraded-mode SLOs per chaos arm",
      {"arm", "failed %", "p99 (us)", "p99 degr %", "hot job (us)", "relearn",
       "cuts", "preempt", "reroutes", "invariants"});
  for (const Arm& a : arms) {
    const ChaosScenarioResult& r = a.result;
    char buf[32];
    table.row().cell(a.name);
    std::snprintf(buf, sizeof buf, "%.1f", r.flows_failed_pct);
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", r.flow_p99.us());
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f",
                  p99_degradation_pct(r, matched_baseline(arms, a)));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%.1f", r.hot_job.us());
    table.cell(buf);
    if (r.controller_restarts > 0) {
      std::snprintf(buf, sizeof buf, "%d ep", r.relearn_epochs);
    } else {
      std::snprintf(buf, sizeof buf, "-");
    }
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(r.srlg_cuts));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(r.preemptions));
    table.cell(buf);
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(r.reroutes));
    table.cell(buf);
    const bool ok = r.conservation_ok && r.completed_before_horizon && r.slots_at_baseline;
    table.cell(ok ? "ok" : "VIOLATED");
  }
  table.print();
  emit_json(arms, json_path);

  // Invariant violations fail the bench (bench-smoke runs this).
  for (const Arm& a : arms) {
    const ChaosScenarioResult& r = a.result;
    if (!r.conservation_ok || !r.completed_before_horizon || !r.slots_at_baseline) {
      std::fprintf(stderr, "ext10: invariant violated in arm %s\n", a.name);
      return 1;
    }
    if (r.controller_restarts > 0 && !r.reservation_relearned) {
      std::fprintf(stderr, "ext10: arm %s never re-learned its reservation\n", a.name);
      return 1;
    }
  }
  return 0;
}
