// FIG1 — reproduces Figure 1 of the paper.
//
// "The latency due to propagation of packets in the media vs. the
// latency due to packet traversing a layer 2 state-of-the-art cut
// through switch. We assume a switch every 2 meters. In the scale of
// a rack, the latency due to packet switching is dominant, and hence
// is bottlenecking scalability."
//
// We sweep end-to-end distance over a chain of nodes spaced 2 m apart
// and decompose a measured probe's latency into media propagation,
// switching pipeline, and serialization+FEC. The analytic columns come
// from the same models the simulator uses; the measured column is an
// actual packet pushed through the transport engine, verifying the two
// agree.
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using sim::SimTime;

void run(bool cut_through) {
  const int kMaxNodes = 21;  // 0..20 -> up to 40 m
  runtime::RuntimeConfig cfg;
  cfg.shape = runtime::RackShape::kChain;
  cfg.nodes = kMaxNodes;
  cfg.rack.hop_meters = 2.0;
  cfg.rack.net_config.switch_params.cut_through = cut_through;
  cfg.enable_crc = false;
  runtime::FabricRuntime rt(cfg);
  const auto& params = rt.rack_params();

  const DataSize probe = DataSize::bytes(1024);
  telemetry::Table table(
      std::string("Figure 1 — media vs switching latency (") +
          (cut_through ? "cut-through" : "store-and-forward") + " switches every 2 m)",
      {"distance_m", "hops", "media_ns", "switching_ns", "ser+fec_ns", "measured_total_ns",
       "switching_share_%"});

  for (int k = 1; k < kMaxNodes; ++k) {
    double measured_ns = 0;
    rt.network().send_probe(0, static_cast<phy::NodeId>(k), probe,
                            [&](SimTime lat, int, bool ok) {
                              if (ok) measured_ns = lat.ns();
                            });
    rt.run_until();

    const double distance_m = 2.0 * k;
    const double media_ns = phy::propagation_delay(params.medium, distance_m).ns();
    // Every intermediate node is a switching element; both end NICs
    // also pay their pipeline.
    const auto& sp = params.net_config.switch_params;
    const double switching_ns = sp.switch_latency.ns() * (k - 1) + sp.nic_latency.ns() * 2;
    const phy::LogicalLink& l = rt.plant().link(*rt.topology().link_between(0, 1));
    // Cut-through pays serialization once plus a header per extra hop;
    // store-and-forward pays it on every hop.
    const double ser_once = l.serialization_delay(probe).ns() + l.fec().latency.ns();
    const double ser_header =
        l.serialization_delay(DataSize::bytes(64)).ns() + l.fec().latency.ns();
    const double ser_ns =
        cut_through ? ser_once + ser_header * (k - 1) : ser_once * k;
    const double share = 100.0 * switching_ns / measured_ns;

    table.row()
        .cell(distance_m, 1)
        .cell(k)
        .cell(media_ns, 1)
        .cell(switching_ns, 1)
        .cell(ser_ns, 1)
        .cell(measured_ns, 1)
        .cell(share, 1);
  }
  table.print();
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header(
      "FIG1", "Figure 1",
      "switching dominates media latency at rack scale (switch every 2 m)");
  run(/*cut_through=*/true);
  run(/*cut_through=*/false);
  std::printf(
      "\nShape check: media grows 10 ns per 2 m hop while switching grows ~450 ns per\n"
      "hop — at 40 m the switching term should exceed media by >40x.\n");
  return 0;
}
