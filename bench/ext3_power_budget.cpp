// EXT3 — the paper's power-budget constraint (§2, §1).
//
// "Rack-scale systems inherit the power budget of a traditional rack,
// and [power] is factored into our proposed architecture."
//
// The CRC's power manager sheds lanes (PLP #1 split + PLP #3 off) when
// the rack exceeds a cap and restores them under demand pressure. We
// sweep the cap and report achieved power, lanes shed, and what the
// degradation costs in goodput and tail latency — the graceful-
// degradation curve a hard budget demands.
#include "bench_common.hpp"

namespace {

using namespace rsf;
using namespace rsf::sim::literals;
using phy::DataSize;
using sim::SimTime;

struct CapResult {
  double cap_w = 0;
  double achieved_w = 0;
  std::uint64_t lanes_shed = 0;
  double goodput_gbps = 0;
  double p99_us = 0;
  std::uint64_t failed = 0;
};

runtime::RuntimeConfig rack_config() {
  runtime::RuntimeConfig cfg;
  cfg.rack.width = 6;
  cfg.rack.height = 6;
  return cfg;
}

CapResult run_cap(double cap_fraction) {
  // Uncapped draw of the identical rack (no controller) sets the cap.
  runtime::RuntimeConfig probe = rack_config();
  probe.enable_crc = false;
  const double uncapped = runtime::FabricRuntime(probe).total_power_watts();

  runtime::RuntimeConfig cfg = rack_config();
  cfg.crc.epoch = 100_us;
  cfg.crc.enable_power_manager = true;
  cfg.crc.power.cap_watts = cap_fraction >= 1.0 ? 1e18 : uncapped * cap_fraction;
  cfg.crc.power.max_ops_per_epoch = 4;
  runtime::FabricRuntime rt(cfg);
  rt.start();

  workload::GeneratorConfig gen_cfg;
  gen_cfg.mean_interarrival = 60_us;
  gen_cfg.horizon = 8_ms;
  gen_cfg.sizes = workload::SizeDistribution::fixed_size(DataSize::kilobytes(64));
  auto& gen = rt.add_generator(workload::TrafficMatrix::uniform(36), gen_cfg);
  gen.start();
  rt.run_until(20_ms);
  rt.stop();
  rt.run_until();

  auto& crc = rt.controller();
  CapResult r;
  r.cap_w = cfg.crc.power.cap_watts >= 1e18 ? uncapped : cfg.crc.power.cap_watts;
  // Time-weighted power over the steady half of the run.
  r.achieved_w = crc.power_series().time_weighted_mean(8_ms, 20_ms, uncapped);
  r.lanes_shed = crc.power_manager().sheds() - crc.power_manager().restores();
  const auto m = rsf::bench::collect(gen, rt.network());
  r.goodput_gbps = m.goodput_gbps;
  r.p99_us = m.fct_p99_us;
  r.failed = m.failed;
  return r;
}

}  // namespace

int main() {
  rsf::bench::quiet_logs();
  rsf::bench::print_header("EXT3", "the §2 power-budget constraint",
                           "a hard cap degrades bandwidth gracefully via lane shedding");
  telemetry::Table table("Power-capped operation, 6x6 rack under uniform load",
                         {"cap", "cap_w", "achieved_w", "net_lanes_shed", "goodput_gbps",
                          "fct_p99_us", "flows_failed"});
  for (double f : {1.0, 0.95, 0.9, 0.8, 0.7}) {
    const CapResult r = run_cap(f);
    table.row()
        .cell(f >= 1.0 ? "none" : std::to_string(static_cast<int>(f * 100)) + "%")
        .cell(r.cap_w, 1)
        .cell(r.achieved_w, 1)
        .cell(r.lanes_shed)
        .cell(r.goodput_gbps, 3)
        .cell(r.p99_us, 1)
        .cell(r.failed);
  }
  table.print();
  std::printf("Shape check: achieved power tracks the cap; tighter caps shed more lanes\n"
              "and trade goodput / tail latency, with no flow failures (graceful).\n");
  return 0;
}
